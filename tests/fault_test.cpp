// Fault-injection engine: gray failures, capacity degradation, switch
// reboots, and stale-feedback injection — each fault hook applies and
// clears, every drop is accounted to a cause, and the per-link packet
// conservation identity holds after any campaign.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <type_traits>
#include <variant>
#include <vector>

#include "debug/determinism.hpp"
#include "fault/fault_injector.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/flow.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga {
namespace {

net::TopologyConfig topo2x2(int hosts = 8) {
  net::TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = hosts;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  return cfg;
}

tcp::TcpConfig dc_tcp() {
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(5);
  return t;
}

std::vector<std::unique_ptr<tcp::TcpFlow>> start_cross_leaf_flows(
    sim::Scheduler& sched, net::Fabric& fabric, int count,
    std::uint64_t bytes) {
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  for (int i = 0; i < count; ++i) {
    net::FlowKey key;
    key.src_host = i;
    key.dst_host = fabric.config().hosts_per_leaf + i;
    key.src_port = static_cast<std::uint16_t>(1000 + 16 * i);
    key.dst_port = 80;
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sched, fabric.host(key.src_host), fabric.host(key.dst_host), key,
        bytes, dc_tcp(), tcp::FlowCompleteFn{}));
    flows.back()->start();
  }
  return flows;
}

void expect_all_links_conserve(net::Fabric& fabric) {
  for (net::Link* l : fabric.fabric_links()) {
    EXPECT_EQ(l->packets_in_flight(), 0u) << l->name();
    EXPECT_TRUE(l->conserves_packets()) << l->name();
  }
  for (int h = 0; h < fabric.num_hosts(); ++h) {
    EXPECT_TRUE(fabric.host_to_leaf(h)->conserves_packets());
    EXPECT_TRUE(fabric.leaf_to_host(h)->conserves_packets());
  }
}

bool trace_has_event(const telemetry::TraceSink& sink,
                     telemetry::EventType type) {
  for (const telemetry::Event& e : sink.all_events()) {
    if (e.type == type) return true;
  }
  return false;
}

TEST(FaultLink, GrayFailureDropsCorruptsAndConserves) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());

  net::Link* gray = fabric.up_link(0, 0, 0);
  ASSERT_NE(gray, nullptr);
  gray->set_gray_failure(0.1, 0.05, 12345);
  EXPECT_TRUE(gray->gray_failure_active());

  auto flows = start_cross_leaf_flows(sched, fabric, 4, 1'000'000);
  sched.run();

  for (auto& f : flows) {
    ASSERT_TRUE(f->complete()) << "TCP must recover from gray loss";
    EXPECT_EQ(f->sink().delivered(), 1'000'000u);
  }
  // Enough packets crossed the lossy uplink for both fates to occur.
  EXPECT_GT(gray->drop_stats().gray_pkts, 0u);
  EXPECT_GT(gray->drop_stats().gray_bytes, 0u);
  EXPECT_GT(gray->drop_stats().corrupt_pkts, 0u);
  // Corrupted packets occupied the wire: they were transmitted (counted in
  // packets_sent) but never delivered.
  EXPECT_GT(gray->packets_sent(), gray->packets_delivered());
  expect_all_links_conserve(fabric);

  gray->clear_gray_failure();
  EXPECT_FALSE(gray->gray_failure_active());
}

TEST(FaultLink, GrayLossPatternIsAFunctionOfTheSeed) {
  // Two identically-seeded runs drop the same packets; a different gray seed
  // changes the pattern while traffic stays fixed.
  auto run = [](std::uint64_t gray_seed) {
    sim::Scheduler sched;
    net::Fabric fabric(sched, topo2x2(), 1);
    fabric.install_lb(core::conga());
    fabric.up_link(0, 0, 0)->set_gray_failure(0.05, 0.0, gray_seed);
    auto flows = start_cross_leaf_flows(sched, fabric, 2, 500'000);
    sched.run();
    return fabric.up_link(0, 0, 0)->drop_stats().gray_pkts;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(FaultLink, AdminDownDropsAreCountedDuringDetectionWindow) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());
  auto flows = start_cross_leaf_flows(sched, fabric, 4, 5'000'000);

  // Fail mid-transfer with a wide detection window: the dataplane blackholes
  // (counted as admin-down drops) until the routing layer withdraws the
  // link. The DRE of the dead link drains, so CONGA keeps preferring it —
  // guaranteeing traffic hits the blackhole.
  sched.schedule_at(sim::milliseconds(1), [&] {
    fabric.fail_fabric_link(0, 0, 0, sim::milliseconds(1));
  });
  sched.run();

  for (auto& f : flows) {
    ASSERT_TRUE(f->complete());
    EXPECT_EQ(f->sink().delivered(), 5'000'000u);
  }
  EXPECT_GT(fabric.up_link(0, 0, 0)->drop_stats().admin_down_pkts, 0u);
  EXPECT_GT(fabric.up_link(0, 0, 0)->drop_stats().admin_down_bytes, 0u);
  expect_all_links_conserve(fabric);
}

TEST(FaultLink, RateScaleSlowsSerializationAndRestores) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());
  telemetry::TraceSink sink;
  fabric.attach_telemetry(&sink);

  net::Link* link = fabric.up_link(0, 0, 0);
  const sim::TimeNs nominal = link->serialization_delay(1500);
  link->set_rate_scale(0.5);
  EXPECT_DOUBLE_EQ(link->rate_scale(), 0.5);
  EXPECT_DOUBLE_EQ(link->effective_rate_bps(), 0.5 * link->rate_bps());
  EXPECT_EQ(link->serialization_delay(1500), 2 * nominal);
  if (telemetry::compiled_in()) {
    EXPECT_TRUE(trace_has_event(sink, telemetry::EventType::kLinkDegraded));
  }

  link->set_rate_scale(1.0);
  EXPECT_EQ(link->serialization_delay(1500), nominal);
  EXPECT_DOUBLE_EQ(link->effective_rate_bps(), link->rate_bps());
}

TEST(FaultInjector, DegradeSpecAppliesBothDirectionsAndClears) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());

  fault::DegradeSpec d;
  d.leaf = 0;
  d.spine = 1;
  d.rate_scale = 0.25;
  d.start = sim::milliseconds(1);
  d.stop = sim::milliseconds(2);
  fault::FaultPlan plan;
  plan.add(d);

  fault::FaultInjector injector(fabric, 3);
  injector.arm(plan);

  sched.run_until(sim::microseconds(1500));
  EXPECT_DOUBLE_EQ(fabric.up_link(0, 1, 0)->rate_scale(), 0.25);
  EXPECT_DOUBLE_EQ(fabric.down_link(1, 0, 0)->rate_scale(), 0.25);
  sched.run_until(sim::microseconds(2500));
  EXPECT_DOUBLE_EQ(fabric.up_link(0, 1, 0)->rate_scale(), 1.0);
  EXPECT_DOUBLE_EQ(fabric.down_link(1, 0, 0)->rate_scale(), 1.0);
  EXPECT_EQ(injector.transitions(), 2u);
}

TEST(FaultInjector, GraySpecArmsAndClearsWithTelemetry) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());
  telemetry::TraceSink sink;
  fabric.attach_telemetry(&sink);

  fault::GrayFailureSpec g;
  g.drop_prob = 0.05;
  g.corrupt_prob = 0.02;
  g.start = sim::microseconds(500);
  g.stop = sim::milliseconds(3);
  fault::FaultPlan plan;
  plan.add(g);

  fault::FaultInjector injector(fabric, 4);
  injector.arm(plan);
  auto flows = start_cross_leaf_flows(sched, fabric, 4, 1'000'000);

  sched.run_until(sim::milliseconds(1));
  EXPECT_TRUE(fabric.up_link(0, 0, 0)->gray_failure_active());
  EXPECT_TRUE(fabric.down_link(0, 0, 0)->gray_failure_active());

  sched.run();
  EXPECT_FALSE(fabric.up_link(0, 0, 0)->gray_failure_active());
  EXPECT_FALSE(fabric.down_link(0, 0, 0)->gray_failure_active());
  EXPECT_EQ(injector.transitions(), 2u);
  for (auto& f : flows) ASSERT_TRUE(f->complete());
  expect_all_links_conserve(fabric);

  if (telemetry::compiled_in()) {
    EXPECT_NE(sink.find_component("fault_injector"),
              telemetry::kInvalidComponent);
    EXPECT_TRUE(trace_has_event(sink, telemetry::EventType::kFaultGray));
    EXPECT_TRUE(trace_has_event(sink, telemetry::EventType::kLinkDropGray));
  }
}

TEST(FaultInjector, SpineRebootSeversAllItsDownlinksThenRestores) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());

  fault::SwitchRebootSpec r;
  r.kind = fault::SwitchRebootSpec::Kind::kSpine;
  r.index = 0;
  r.at = sim::milliseconds(1);
  r.outage = sim::milliseconds(1);
  r.detection_delay = sim::microseconds(100);
  fault::FaultPlan plan;
  plan.add(r);

  fault::FaultInjector injector(fabric, 5);
  injector.arm(plan);

  sched.run_until(sim::microseconds(1200));
  EXPECT_FALSE(fabric.leaf(0).uplink_live(0));
  EXPECT_FALSE(fabric.leaf(1).uplink_live(0));
  EXPECT_EQ(fabric.spine(0).downlink_count(0), 0u);
  EXPECT_EQ(fabric.spine(0).downlink_count(1), 0u);
  EXPECT_TRUE(fabric.leaf(0).uplink_live(1)) << "spine 1 untouched";

  sched.run_until(sim::microseconds(2200));
  EXPECT_TRUE(fabric.leaf(0).uplink_live(0));
  EXPECT_TRUE(fabric.leaf(1).uplink_live(0));
  EXPECT_EQ(fabric.spine(0).downlink_count(0), 1u);
  EXPECT_EQ(injector.transitions(), 2u);
}

TEST(FaultInjector, LeafRebootSeversItsUplinksOnly) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());

  fault::SwitchRebootSpec r;
  r.kind = fault::SwitchRebootSpec::Kind::kLeaf;
  r.index = 0;
  r.at = sim::milliseconds(1);
  r.outage = sim::milliseconds(1);
  r.detection_delay = sim::microseconds(100);
  fault::FaultPlan plan;
  plan.add(r);

  fault::FaultInjector injector(fabric, 6);
  injector.arm(plan);

  sched.run_until(sim::microseconds(1200));
  EXPECT_FALSE(fabric.leaf(0).uplink_live(0));
  EXPECT_FALSE(fabric.leaf(0).uplink_live(1));
  EXPECT_TRUE(fabric.leaf(1).uplink_live(0)) << "leaf 1 keeps its uplinks";
  EXPECT_TRUE(fabric.leaf(1).uplink_live(1));

  sched.run_until(sim::microseconds(2200));
  EXPECT_TRUE(fabric.leaf(0).uplink_live(0));
  EXPECT_TRUE(fabric.leaf(0).uplink_live(1));
}

TEST(FaultInjector, StaleFeedbackTogglesCeSuppression) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo2x2(), 1);
  fabric.install_lb(core::conga());

  fault::StaleFeedbackSpec s;
  s.leaf = 0;
  s.spine = 1;
  s.start = sim::milliseconds(1);
  s.stop = sim::milliseconds(2);
  fault::FaultPlan plan;
  plan.add(s);

  fault::FaultInjector injector(fabric, 7);
  injector.arm(plan);

  EXPECT_FALSE(fabric.up_link(0, 1, 0)->ce_suppressed());
  sched.run_until(sim::microseconds(1500));
  EXPECT_TRUE(fabric.up_link(0, 1, 0)->ce_suppressed());
  sched.run_until(sim::microseconds(2500));
  EXPECT_FALSE(fabric.up_link(0, 1, 0)->ce_suppressed());
  EXPECT_EQ(injector.transitions(), 2u);
}

// Flattens a plan to a comparable fingerprint (variant index + every field).
std::vector<std::uint64_t> fingerprint(const fault::FaultPlan& plan) {
  std::vector<std::uint64_t> out;
  auto u = [](auto v) { return static_cast<std::uint64_t>(v); };
  auto p = [](double v) {
    return static_cast<std::uint64_t>(std::llround(v * 1e9));
  };
  for (const fault::FaultSpec& spec : plan.faults) {
    out.push_back(spec.index());
    std::visit(
        [&](const auto& s) {
          using T = std::decay_t<decltype(s)>;
          if constexpr (std::is_same_v<T, fault::LinkFlapSpec>) {
            for (auto v : {u(s.leaf), u(s.spine), u(s.parallel),
                           u(s.mean_down_dwell), u(s.mean_up_dwell),
                           u(s.detection_delay), u(s.start), u(s.stop)}) {
              out.push_back(v);
            }
          } else if constexpr (std::is_same_v<T, fault::DegradeSpec>) {
            for (auto v : {u(s.leaf), u(s.spine), u(s.parallel),
                           p(s.rate_scale), u(s.both_directions), u(s.start),
                           u(s.stop)}) {
              out.push_back(v);
            }
          } else if constexpr (std::is_same_v<T, fault::GrayFailureSpec>) {
            for (auto v : {u(s.leaf), u(s.spine), u(s.parallel),
                           p(s.drop_prob), p(s.corrupt_prob),
                           u(s.both_directions), u(s.start), u(s.stop)}) {
              out.push_back(v);
            }
          } else if constexpr (std::is_same_v<T, fault::SwitchRebootSpec>) {
            for (auto v : {u(s.kind), u(s.index), u(s.at), u(s.outage),
                           u(s.detection_delay)}) {
              out.push_back(v);
            }
          } else {
            for (auto v : {u(s.leaf), u(s.spine), u(s.parallel), u(s.start),
                           u(s.stop)}) {
              out.push_back(v);
            }
          }
        },
        spec);
  }
  return out;
}

TEST(FaultPlan, RandomPlanIsDeterministicInTheSeed) {
  const net::TopologyConfig topo = topo2x2();
  EXPECT_EQ(fingerprint(fault::make_random_plan(topo, 7)),
            fingerprint(fault::make_random_plan(topo, 7)));
  EXPECT_NE(fingerprint(fault::make_random_plan(topo, 7)),
            fingerprint(fault::make_random_plan(topo, 8)));
}

TEST(FaultPlan, RandomPlanRespectsBoundsAndClearsByHorizon) {
  const net::TopologyConfig topo = topo2x2();
  fault::RandomPlanConfig cfg;
  cfg.min_faults = 2;
  cfg.max_faults = 6;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const fault::FaultPlan plan = fault::make_random_plan(topo, seed, cfg);
    EXPECT_GE(plan.size(), 2u);
    EXPECT_LE(plan.size(), 6u);
    for (const fault::FaultSpec& spec : plan.faults) {
      std::visit(
          [&](const auto& s) {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, fault::SwitchRebootSpec>) {
              EXPECT_GE(s.at, 0);
              EXPECT_LE(s.at + s.outage, cfg.horizon);
            } else {
              EXPECT_GE(s.start, 0);
              EXPECT_GT(s.stop, s.start) << "random faults must clear";
              EXPECT_LE(s.stop, cfg.horizon);
            }
          },
          spec);
    }
  }
}

debug::DigestScenario digest_scenario() {
  debug::DigestScenario s;
  s.topo = topo2x2(4);
  s.lb = core::conga();
  s.dist = workload::fixed_size(100'000);
  s.load = 0.3;
  s.warmup = sim::milliseconds(1);
  s.measure = sim::milliseconds(5);
  return s;
}

TEST(FaultInjector, EmptyPlanNeverTouchesTheFaultSeed) {
  // Pay-for-what-you-use: with no faults, the fault seed must be dead — two
  // runs differing only in fault_seed are bit-identical.
  debug::DigestScenario a = digest_scenario();
  a.fault_seed = 11;
  debug::DigestScenario b = digest_scenario();
  b.fault_seed = 999;
  const debug::RunDigests ra = debug::run_digest_trial(a);
  const debug::RunDigests rb = debug::run_digest_trial(b);
  ASSERT_GT(ra.flows, 0u);
  EXPECT_TRUE(ra == rb);
}

TEST(FaultInjector, GrayCampaignReproducesAndPerturbsTheSchedule) {
  debug::DigestScenario s = digest_scenario();
  fault::GrayFailureSpec g;
  g.drop_prob = 0.02;
  g.corrupt_prob = 0.01;
  g.start = sim::milliseconds(1);
  g.stop = sim::milliseconds(4);
  s.faults.add(g);

  const debug::RunDigests a = debug::run_digest_trial(s);
  const debug::RunDigests b = debug::run_digest_trial(s);
  ASSERT_GT(a.flows, 0u);
  EXPECT_TRUE(a.drained) << "faults clear before the drain";
  EXPECT_TRUE(a == b) << "a fault campaign must replay bit-for-bit";

  const debug::RunDigests clean = debug::run_digest_trial(digest_scenario());
  EXPECT_NE(a.trace, clean.trace) << "the campaign must actually do something";
}

}  // namespace
}  // namespace conga
