// Tests for topology configuration, validation, and fabric wiring.
#include <gtest/gtest.h>

#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"

namespace conga::net {
namespace {

TEST(TopologyConfig, BaselineMatchesPaperTestbed) {
  const TopologyConfig cfg = testbed_baseline();
  EXPECT_EQ(cfg.num_leaves, 2);
  EXPECT_EQ(cfg.num_spines, 2);
  EXPECT_EQ(cfg.hosts_per_leaf, 32);
  EXPECT_EQ(cfg.uplinks_per_leaf(), 4);  // 2 spines x 2 parallel 40G links
  EXPECT_DOUBLE_EQ(cfg.host_link_bps, 10e9);
  EXPECT_DOUBLE_EQ(cfg.fabric_link_bps, 40e9);
  // 2:1 oversubscription: 32 x 10G hosts vs 4 x 40G uplinks.
  EXPECT_DOUBLE_EQ(cfg.hosts_per_leaf * cfg.host_link_bps /
                       cfg.leaf_uplink_capacity_bps(),
                   2.0);
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(TopologyConfig, LinkFailureVariantDropsOneLink) {
  const TopologyConfig cfg = testbed_link_failure();
  ASSERT_EQ(cfg.overrides.size(), 1u);
  EXPECT_EQ(cfg.overrides[0].leaf, 1);
  EXPECT_EQ(cfg.overrides[0].spine, 1);
  EXPECT_DOUBLE_EQ(cfg.overrides[0].rate_factor, 0.0);
}

TEST(TopologyConfig, ValidationCatchesBadValues) {
  TopologyConfig cfg = testbed_baseline();
  cfg.num_leaves = 0;
  EXPECT_FALSE(cfg.validate().empty());

  cfg = testbed_baseline();
  cfg.num_spines = 9;
  cfg.links_per_spine = 2;  // 18 uplinks > 4-bit LBTag space
  EXPECT_FALSE(cfg.validate().empty());

  cfg = testbed_baseline();
  cfg.overrides.push_back({5, 0, 0, 0.0});  // leaf out of range
  EXPECT_FALSE(cfg.validate().empty());

  cfg = testbed_baseline();
  cfg.overrides.push_back({0, 0, 0, -1.0});  // negative factor
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Fabric, RejectsInvalidConfig) {
  sim::Scheduler sched;
  TopologyConfig cfg = testbed_baseline();
  cfg.hosts_per_leaf = 0;
  EXPECT_THROW(Fabric(sched, cfg), std::invalid_argument);
}

TEST(Fabric, WiresExpectedCounts) {
  sim::Scheduler sched;
  Fabric fabric(sched, testbed_baseline());
  EXPECT_EQ(fabric.num_hosts(), 64);
  EXPECT_EQ(fabric.num_leaves(), 2);
  EXPECT_EQ(fabric.num_spines(), 2);
  EXPECT_EQ(fabric.leaf(0).uplinks().size(), 4u);
  EXPECT_EQ(fabric.leaf(1).uplinks().size(), 4u);
  // 2 leaves x 2 spines x 2 parallel x 2 directions = 16 fabric links.
  EXPECT_EQ(fabric.fabric_links().size(), 16u);
}

TEST(Fabric, DirectoryMapsHostsToLeaves) {
  sim::Scheduler sched;
  Fabric fabric(sched, testbed_baseline());
  for (int h = 0; h < 32; ++h) EXPECT_EQ(fabric.leaf_of(h), 0);
  for (int h = 32; h < 64; ++h) EXPECT_EQ(fabric.leaf_of(h), 1);
}

TEST(Fabric, FailedLinkRemovedFromForwarding) {
  sim::Scheduler sched;
  Fabric fabric(sched, testbed_link_failure());
  EXPECT_EQ(fabric.leaf(1).uplinks().size(), 3u);  // one uplink gone
  EXPECT_EQ(fabric.leaf(0).uplinks().size(), 4u);  // untouched
  EXPECT_EQ(fabric.down_link(1, 1, 1), nullptr);   // spine side too
  EXPECT_NE(fabric.down_link(1, 1, 0), nullptr);
  // 16 - 2 (one pair, both directions).
  EXPECT_EQ(fabric.fabric_links().size(), 14u);
}

TEST(Fabric, DegradedLinkKeepsReducedRate) {
  sim::Scheduler sched;
  TopologyConfig cfg = testbed_baseline();
  cfg.overrides.push_back({1, 1, 0, 0.5});
  Fabric fabric(sched, cfg);
  EXPECT_EQ(fabric.leaf(1).uplinks().size(), 4u);  // still forwarding
  // Find the degraded uplink (spine 1).
  double degraded_rate = 0;
  for (const auto& up : fabric.leaf(1).uplinks()) {
    if (up.spine == 1) degraded_rate = up.link->rate_bps();
    if (up.spine == 1) break;
  }
  EXPECT_DOUBLE_EQ(degraded_rate, 20e9);
}

TEST(Fabric, IntraLeafTrafficBypassesFabric) {
  sim::Scheduler sched;
  Fabric fabric(sched, testbed_baseline());
  fabric.install_lb(lb::ecmp());
  PacketPtr p = make_packet();
  p->flow.src_host = 0;
  p->flow.dst_host = 1;  // same leaf
  p->flow.src_port = 5;
  p->flow.dst_port = 6;
  p->size_bytes = 1000;
  std::uint64_t received = 0;
  fabric.host(1).set_default_handler(
      [&](PacketPtr pkt) { received = pkt->size_bytes; });
  fabric.host(0).send(std::move(p));
  sched.run();
  EXPECT_EQ(received, 1000u);
  EXPECT_EQ(fabric.leaf(0).packets_to_fabric(), 0u);
}

TEST(Fabric, InterLeafTrafficEncapsulatesAndDelivers) {
  sim::Scheduler sched;
  Fabric fabric(sched, testbed_baseline());
  fabric.install_lb(lb::ecmp());
  PacketPtr p = make_packet();
  p->flow.src_host = 0;
  p->flow.dst_host = 40;  // leaf 1
  p->flow.src_port = 5;
  p->flow.dst_port = 6;
  p->size_bytes = 1000;
  bool got = false;
  fabric.host(40).set_default_handler([&](PacketPtr pkt) {
    got = true;
    EXPECT_FALSE(pkt->overlay.valid) << "must be decapsulated at the leaf";
    EXPECT_EQ(pkt->size_bytes, 1000u) << "overlay bytes stripped";
  });
  fabric.host(0).send(std::move(p));
  sched.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(fabric.leaf(0).packets_to_fabric(), 1u);
  EXPECT_EQ(fabric.leaf(1).packets_from_fabric(), 1u);
}

TEST(Fabric, AckTravelsToWireDestination) {
  sim::Scheduler sched;
  Fabric fabric(sched, testbed_baseline());
  fabric.install_lb(lb::ecmp());
  // ACK of flow (host0 -> host40) travels 40 -> 0.
  PacketPtr ack = make_packet();
  ack->flow.src_host = 0;
  ack->flow.dst_host = 40;
  ack->flow.src_port = 5;
  ack->flow.dst_port = 6;
  ack->tcp.is_ack = true;
  ack->size_bytes = kAckBytes;
  bool got = false;
  fabric.host(0).set_default_handler([&](PacketPtr) { got = true; });
  fabric.host(40).send(std::move(ack));
  sched.run();
  EXPECT_TRUE(got);
}

TEST(Fabric, BaseRttIsPlausible) {
  sim::Scheduler sched;
  Fabric fabric(sched, testbed_baseline());
  const sim::TimeNs rtt = fabric.base_rtt(1500);
  // 4 hops each way with ~1us propagation + serialization: single-digit us.
  EXPECT_GT(rtt, sim::microseconds(5));
  EXPECT_LT(rtt, sim::microseconds(30));
}

TEST(Fabric, SpineEcmpSpreadsAcrossParallelLinks) {
  sim::Scheduler sched;
  Fabric fabric(sched, testbed_baseline());
  fabric.install_lb(lb::ecmp());
  // Many distinct flows leaf0 -> leaf1; both parallel links of each spine
  // should carry traffic.
  for (int i = 0; i < 400; ++i) {
    PacketPtr p = make_packet();
    p->flow.src_host = i % 32;
    p->flow.dst_host = 32 + (i % 32);
    p->flow.src_port = static_cast<std::uint16_t>(i);
    p->flow.dst_port = 80;
    p->size_bytes = 1000;
    fabric.host(p->flow.src_host).send(std::move(p));
  }
  sched.run();
  for (int s = 0; s < 2; ++s) {
    for (int par = 0; par < 2; ++par) {
      EXPECT_GT(fabric.down_link(s, 1, par)->packets_sent(), 10u)
          << "spine " << s << " parallel " << par;
    }
  }
}

TEST(Fabric, HostLinksHaveConfiguredQueues) {
  sim::Scheduler sched;
  TopologyConfig cfg = testbed_baseline();
  cfg.edge_queue_bytes = 123456;
  Fabric fabric(sched, cfg);
  EXPECT_EQ(fabric.leaf_to_host(0)->queue().capacity_bytes(), 123456u);
}

}  // namespace
}  // namespace conga::net
