// Tests for the parallel experiment runner: execution semantics (every index
// exactly once, results committed by index, exception propagation) and the
// property the whole design leans on — per-cell simulation digests are
// independent of the jobs count.
#include "runtime/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "debug/determinism.hpp"
#include "lb/factories.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga {
namespace {

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 100;
  std::vector<std::atomic<int>> hits(kCount);
  runtime::parallel_for(kCount, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelRunner, SequentialFallbackPreservesIndexOrder) {
  std::vector<std::size_t> order;
  runtime::parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelRunner, MapCommitsResultsByIndex) {
  const std::vector<std::size_t> out =
      runtime::parallel_map<std::size_t>(64, 8, [](std::size_t i) {
        return i * i;
      });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, ZeroCountIsNoop) {
  bool ran = false;
  runtime::parallel_for(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelRunner, PropagatesTaskException) {
  EXPECT_THROW(
      runtime::parallel_for(16, 4,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("cell 7");
                            }),
      std::runtime_error);
}

TEST(ParallelRunner, DefaultJobsHonorsEnv) {
  ::setenv("CONGA_BENCH_JOBS", "3", 1);
  EXPECT_EQ(runtime::default_jobs(), 3);
  ::setenv("CONGA_BENCH_JOBS", "0", 1);  // invalid: fall back to hardware
  EXPECT_GE(runtime::default_jobs(), 1);
  ::unsetenv("CONGA_BENCH_JOBS");
  EXPECT_GE(runtime::default_jobs(), 1);
}

debug::DigestScenario grid_cell(double load, std::uint64_t seed) {
  debug::DigestScenario s;
  s.topo.num_leaves = 3;
  s.topo.num_spines = 2;
  s.topo.hosts_per_leaf = 4;
  s.lb = core::conga();
  s.dist = workload::fixed_size(50'000);
  s.load = load;
  s.warmup = sim::milliseconds(1);
  s.measure = sim::milliseconds(4);
  s.fabric_seed = seed;
  s.traffic_seed = seed * 31 + 7;
  return s;
}

// The tentpole determinism property: running a grid of cells with --jobs 1
// and --jobs 8 produces byte-identical per-cell FCT and event-trace digests.
// Workers own their Scheduler/Fabric/Rng, so any cross-thread coupling
// (shared mutable state, iteration-order dependence) breaks this test — and
// the TSan CI lane runs it too.
TEST(ParallelRunner, GridDigestsIndependentOfJobs) {
  struct Cell {
    double load;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const double load : {0.3, 0.5}) {
    for (const std::uint64_t seed : {1ULL, 2ULL}) cells.push_back({load, seed});
  }
  auto run_cell = [&](std::size_t i) {
    return debug::run_digest_trial(grid_cell(cells[i].load, cells[i].seed));
  };

  const std::vector<debug::RunDigests> seq =
      runtime::parallel_map<debug::RunDigests>(cells.size(), 1, run_cell);
  const std::vector<debug::RunDigests> par =
      runtime::parallel_map<debug::RunDigests>(cells.size(), 8, run_cell);

  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_GT(seq[i].flows, 0u) << "cell " << i << " produced no flows";
    EXPECT_EQ(seq[i].fct, par[i].fct) << "FCT digest diverged in cell " << i;
    EXPECT_EQ(seq[i].trace, par[i].trace)
        << "event-trace digest diverged in cell " << i;
    EXPECT_TRUE(seq[i] == par[i]);
  }
}

// Distinct cells must of course differ — guards against a digest that is
// insensitive to its inputs, which would make the test above vacuous.
TEST(ParallelRunner, DistinctCellsProduceDistinctDigests) {
  const debug::RunDigests a = debug::run_digest_trial(grid_cell(0.3, 1));
  const debug::RunDigests b = debug::run_digest_trial(grid_cell(0.5, 1));
  EXPECT_NE(a.trace, b.trace);
}

}  // namespace
}  // namespace conga
