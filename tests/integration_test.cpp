// End-to-end fabric scenarios reproducing the paper's headline behaviours in
// miniature: Fig 2 (asymmetry: global beats local beats nothing), Fig 3
// (traffic-matrix adaptivity), link-failure robustness, and Incast.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "stats/samplers.hpp"
#include "tcp/flow.hpp"
#include "tcp/mptcp_connection.hpp"
#include "workload/incast_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace conga {
namespace {

using net::Fabric;
using net::TopologyConfig;

tcp::TcpConfig dc_tcp(sim::TimeNs min_rto = sim::milliseconds(5)) {
  tcp::TcpConfig cfg;
  cfg.min_rto = min_rto;
  return cfg;
}

// ---- Fig 2: asymmetry requires global congestion-awareness ----

TopologyConfig fig2_topo() {
  TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 6;  // 60G demand vs 40+20 = 60G of paths
  cfg.links_per_spine = 1;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  cfg.overrides.push_back({1, 1, 0, 0.5});  // (S1, L1) pair at 20G
  return cfg;
}

double fig2_throughput(const Fabric::LbFactory& lb, std::uint64_t seed) {
  sim::Scheduler sched;
  Fabric fabric(sched, fig2_topo(), seed);
  fabric.install_lb(lb);
  // Two flows per host pair (12 flows) so hash lumpiness averages out a bit.
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  int seq = 0;
  for (int rep = 0; rep < 2; ++rep) {
    for (int h = 0; h < 6; ++h) {
      net::FlowKey key;
      key.src_host = h;
      key.dst_host = 6 + h;
      key.src_port = static_cast<std::uint16_t>(1000 + 16 * seq++);
      key.dst_port = 80;
      flows.push_back(std::make_unique<tcp::TcpFlow>(
          sched, fabric.host(h), fabric.host(6 + h), key,
          std::uint64_t{1} << 40, dc_tcp(), tcp::FlowCompleteFn{}));
      flows.back()->start();
    }
  }
  sched.run_until(sim::milliseconds(30));
  std::uint64_t base = 0;
  for (int h = 6; h < 12; ++h) base += fabric.host(h).bytes_received();
  sched.run_until(sim::milliseconds(110));
  std::uint64_t total = 0;
  for (int h = 6; h < 12; ++h) total += fabric.host(h).bytes_received();
  return static_cast<double>(total - base) * 8.0 / 0.080;
}

TEST(Fig2Asymmetry, CongaBeatsEcmpBeatsLocalShape) {
  // Single-seed deterministic shape check. With only 6 host pairs ECMP's
  // throughput is hash-luck (some seeds land a perfect 40/20 split); this
  // seed pins its typical uneven split, which is the Fig 2 configuration.
  // Cross-seed averaging lives in bench/fig02_asymmetry_modes.
  const double conga_bps = fig2_throughput(core::conga(), 13);
  const double ecmp_bps = fig2_throughput(lb::ecmp(), 13);
  const double local_eq_bps = fig2_throughput(lb::local_equal(), 13);

  // CONGA approaches the 60G optimum (paper: 100 of 100G).
  EXPECT_GT(conga_bps, 0.85 * 60e9);
  // ECMP's even split caps the lower path at 20G (paper: 90 of 100G).
  EXPECT_GT(conga_bps, 1.04 * ecmp_bps);
  // The strict-equal-split local scheme is far from optimal — the §2.4
  // paradox (paper: 80 of 100G): the throttled path drags the healthy one
  // down to its rate. (ECMP-vs-local ordering needs seed averaging; the
  // fig02 bench shows it across seeds.)
  EXPECT_GT(conga_bps, 1.15 * local_eq_bps);
}

TEST(Fig2Asymmetry, WeightedObliviousAlsoWorks) {
  // §2.4: weights matched to the topology (2:1) fix Fig 2 specifically.
  const double weighted_bps =
      fig2_throughput(lb::weighted({2.0, 1.0}), 11);
  EXPECT_GT(weighted_bps, 0.85 * 60e9);
}

// ---- Fig 3: the right split depends on the traffic matrix ----

struct Fig3Result {
  double s0_bps;  // L1 -> S0 uplink throughput
  double s1_bps;  // L1 -> S1 uplink throughput
};

Fig3Result run_fig3(bool with_l0_traffic, const Fabric::LbFactory& lb) {
  TopologyConfig cfg;
  cfg.num_leaves = 3;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 8;  // L0: 0-7, L1: 8-15, L2: 16-23
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  cfg.overrides.push_back({0, 1, 0, 0.0});  // L0 has no uplink to S1

  sim::Scheduler sched;
  Fabric fabric(sched, cfg, 21);
  fabric.install_lb(lb);

  // L1 -> L2: a stream of short flows totalling ~24 Gbps, so the split
  // across the spines reflects many fresh decisions. Destinations are kept
  // disjoint from the L0 flows' (hosts 20-23 vs 16-19) so the contention is
  // on the fabric link (S0, L2), not on the edge ports.
  workload::TrafficGenConfig gen_cfg;
  gen_cfg.load = 24e9 / (cfg.leaf_uplink_capacity_bps() * cfg.num_leaves);
  gen_cfg.stop = sim::milliseconds(100);
  gen_cfg.pair_picker = [](sim::Rng& rng) {
    return std::pair<net::HostId, net::HostId>(
        static_cast<net::HostId>(8 + rng.index(8)),
        static_cast<net::HostId>(20 + rng.index(4)));
  };
  workload::TrafficGenerator gen(fabric,
                                 tcp::make_tcp_flow_factory(dc_tcp()),
                                 workload::fixed_size(500'000), gen_cfg);
  gen.start();

  // Optionally L0 -> L2: 4 persistent 10G flows, forced through S0.
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  if (with_l0_traffic) {
    for (int h = 0; h < 4; ++h) {
      net::FlowKey key;
      key.src_host = h;
      key.dst_host = 16 + h;
      key.src_port = static_cast<std::uint16_t>(2000 + 16 * h);
      key.dst_port = 80;
      flows.push_back(std::make_unique<tcp::TcpFlow>(
          sched, fabric.host(h), fabric.host(key.dst_host), key,
          std::uint64_t{1} << 40, dc_tcp(), tcp::FlowCompleteFn{}));
      flows.back()->start();
    }
  }

  sched.run_until(sim::milliseconds(30));
  std::uint64_t s0_base = 0, s1_base = 0;
  for (const auto& up : fabric.leaf(1).uplinks()) {
    (up.spine == 0 ? s0_base : s1_base) += up.link->bytes_sent();
  }
  sched.run_until(sim::milliseconds(100));
  std::uint64_t s0 = 0, s1 = 0;
  for (const auto& up : fabric.leaf(1).uplinks()) {
    (up.spine == 0 ? s0 : s1) += up.link->bytes_sent();
  }
  const double secs = 0.070;
  return Fig3Result{(s0 - s0_base) * 8.0 / secs, (s1 - s1_base) * 8.0 / secs};
}

TEST(Fig3TrafficMatrix, CongaAdaptsSplitToCrossTraffic) {
  // (a) No L0 traffic: L1->L2 splits roughly evenly over both spines.
  const Fig3Result a = run_fig3(false, core::conga());
  const double share_a = a.s1_bps / (a.s0_bps + a.s1_bps);
  EXPECT_NEAR(share_a, 0.5, 0.15);

  // (b) With 40G of L0->L2 via S0, CONGA shifts L1->L2 strongly toward S1.
  const Fig3Result b = run_fig3(true, core::conga());
  const double share_b = b.s1_bps / (b.s0_bps + b.s1_bps);
  EXPECT_GT(share_b, 0.62);
  EXPECT_GT(share_b, share_a + 0.1);
}

TEST(Fig3TrafficMatrix, EcmpCannotAdapt) {
  const Fig3Result a = run_fig3(false, lb::ecmp());
  const Fig3Result b = run_fig3(true, lb::ecmp());
  const double share_a = a.s1_bps / (a.s0_bps + a.s1_bps);
  const double share_b = b.s1_bps / (b.s0_bps + b.s1_bps);
  // The hash split does not react to the cross traffic.
  EXPECT_NEAR(share_b, share_a, 0.1);
}

// ---- Link failure (Fig 7b / Fig 11 shape) ----

TEST(LinkFailure, CongaSustainsHigherLoadThanEcmp) {
  // Asymmetric testbed (3 of 4 uplinks at Leaf 1). Fixed-size flows at 60%
  // offered load: ECMP keeps sending half of Leaf0->Leaf1 traffic through
  // Spine 1 whose single remaining link saturates; CONGA shifts away.
  auto run = [&](const Fabric::LbFactory& lb) {
    TopologyConfig cfg = net::testbed_link_failure();
    cfg.hosts_per_leaf = 16;  // trim the testbed for test runtime
    sim::Scheduler sched;
    Fabric fabric(sched, cfg, 31);
    fabric.install_lb(lb);
    workload::TrafficGenConfig gen_cfg;
    gen_cfg.load = 0.6;
    gen_cfg.stop = sim::milliseconds(40);
    gen_cfg.measure_start = sim::milliseconds(5);
    gen_cfg.measure_stop = sim::milliseconds(35);
    workload::TrafficGenerator gen(
        fabric, tcp::make_tcp_flow_factory(dc_tcp()),
        workload::fixed_size(500'000), gen_cfg);
    gen.start();
    workload::run_with_drain(sched, gen, gen_cfg.stop, sim::seconds(1.0));
    return std::pair<double, double>(
        gen.collector().avg_normalized_fct(),
        static_cast<double>(gen.measured_completed()) /
            static_cast<double>(std::max<std::uint64_t>(
                gen.measured_started(), 1)));
  };
  const auto [conga_fct, conga_done] = run(core::conga());
  const auto [ecmp_fct, ecmp_done] = run(lb::ecmp());
  EXPECT_GE(conga_done, 0.99);
  EXPECT_LT(conga_fct, ecmp_fct)
      << "CONGA must beat ECMP under asymmetry at high load";
}

TEST(LinkFailure, CongaKeepsHotspotQueueShorter) {
  auto hotspot_avg_queue = [&](const Fabric::LbFactory& lb) {
    TopologyConfig cfg = net::testbed_link_failure();
    cfg.hosts_per_leaf = 16;
    sim::Scheduler sched;
    Fabric fabric(sched, cfg, 31);
    fabric.install_lb(lb);
    workload::TrafficGenConfig gen_cfg;
    gen_cfg.load = 0.6;
    gen_cfg.stop = sim::milliseconds(40);
    workload::TrafficGenerator gen(
        fabric, tcp::make_tcp_flow_factory(dc_tcp()),
        workload::fixed_size(500'000), gen_cfg);
    gen.start();
    sched.run_until(sim::milliseconds(40));
    // The hotspot: the surviving [Spine1 -> Leaf1] link.
    return fabric.down_link(1, 1, 0)->queue().time_avg_bytes(sched.now());
  };
  const double conga_q = hotspot_avg_queue(core::conga());
  const double ecmp_q = hotspot_avg_queue(lb::ecmp());
  EXPECT_LT(conga_q, ecmp_q * 0.7)
      << "CONGA must relieve the hotspot (paper Fig 11c)";
}

// ---- Incast (Fig 13 shape) ----

TEST(Incast, CongaTcpBeatsMptcpAtHighFanIn) {
  TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 17;  // client + 16 servers on the far leaf
  cfg.links_per_spine = 2;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  // Dynamic shared buffering like the testbed's ToR: plain TCP's burst
  // fits; MPTCP's 8-subflow jumbo burst does not (see bench/fig13).
  cfg.shared_buffer_bytes = 10 * 1024 * 1024;
  cfg.edge_queue_bytes = 10 * 1024 * 1024;

  workload::IncastConfig inc;
  inc.client = 0;
  for (int s = 0; s < 16; ++s) inc.servers.push_back(17 + s);
  inc.total_bytes = 10'000'000;
  inc.rounds = 3;

  auto run = [&](tcp::FlowFactory factory) {
    sim::Scheduler sched;
    Fabric fabric(sched, cfg, 17);
    fabric.install_lb(core::conga());
    workload::IncastGenerator gen(fabric, std::move(factory), inc);
    gen.start();
    sched.run_until(sim::seconds(20.0));
    return gen.finished() ? gen.goodput_fraction() : 0.0;
  };

  tcp::TcpConfig t = dc_tcp(sim::milliseconds(200));  // Linux default minRTO
  t.mtu = 9000;  // jumbo frames: the worst case for MPTCP (Fig 13b)
  tcp::MptcpConfig m;
  m.tcp = t;
  m.num_subflows = 8;
  const double tcp_goodput = run(tcp::make_tcp_flow_factory(t));
  const double mptcp_goodput = run(tcp::make_mptcp_flow_factory(m));
  EXPECT_GT(tcp_goodput, 0.7);
  EXPECT_GT(tcp_goodput, 2.0 * mptcp_goodput)
      << "MPTCP's 8 subflows must degrade Incast (paper Fig 13)";
}

// ---- Symmetric fabric sanity ----

TEST(Symmetric, CongaMatchesOrBeatsEcmpFct) {
  auto run = [&](const Fabric::LbFactory& lb) {
    TopologyConfig cfg = net::testbed_baseline();
    cfg.hosts_per_leaf = 16;
    sim::Scheduler sched;
    Fabric fabric(sched, cfg, 41);
    fabric.install_lb(lb);
    workload::TrafficGenConfig gen_cfg;
    gen_cfg.load = 0.5;
    gen_cfg.stop = sim::milliseconds(30);
    gen_cfg.measure_start = sim::milliseconds(5);
    gen_cfg.measure_stop = sim::milliseconds(25);
    workload::TrafficGenerator gen(
        fabric, tcp::make_tcp_flow_factory(dc_tcp()),
        workload::fixed_size(300'000), gen_cfg);
    gen.start();
    workload::run_with_drain(sched, gen, gen_cfg.stop, sim::seconds(1.0));
    return gen.collector().avg_normalized_fct();
  };
  const double conga_fct = run(core::conga());
  const double ecmp_fct = run(lb::ecmp());
  EXPECT_LT(conga_fct, ecmp_fct * 1.1)
      << "on a symmetric fabric CONGA must be at least competitive";
  EXPECT_GT(conga_fct, 0.9) << "normalized FCT below 1 is impossible";
}

TEST(Symmetric, CongaBalancesUplinksBetterThanEcmp) {
  auto imbalance = [&](const Fabric::LbFactory& lb) {
    TopologyConfig cfg = net::testbed_baseline();
    cfg.hosts_per_leaf = 16;
    sim::Scheduler sched;
    Fabric fabric(sched, cfg, 43);
    fabric.install_lb(lb);
    workload::TrafficGenConfig gen_cfg;
    gen_cfg.load = 0.6;
    gen_cfg.stop = sim::milliseconds(40);
    workload::TrafficGenerator gen(
        fabric, tcp::make_tcp_flow_factory(dc_tcp()),
        workload::enterprise(), gen_cfg);
    gen.start();
    std::vector<const net::Link*> uplinks;
    for (const auto& up : fabric.leaf(0).uplinks()) uplinks.push_back(up.link);
    stats::ThroughputImbalanceSampler sampler(sched, uplinks,
                                              sim::milliseconds(1),
                                              sim::milliseconds(5),
                                              sim::milliseconds(40));
    sched.run_until(sim::milliseconds(40));
    return sampler.imbalance_pct().median();
  };
  const double conga_imb = imbalance(core::conga());
  const double ecmp_imb = imbalance(lb::ecmp());
  EXPECT_LT(conga_imb, ecmp_imb)
      << "CONGA must balance leaf uplinks tighter than ECMP (Fig 12)";
}

}  // namespace
}  // namespace conga
