// Cross-validation between the independent analysis components: the LP
// solver, the max-flow solver, the best-response dynamics, and the packet
// simulator must agree wherever their domains overlap.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bottleneck_game.hpp"
#include "analysis/maxflow.hpp"
#include "analysis/simplex.hpp"
#include "sim/random.hpp"

namespace conga::analysis {
namespace {

/// Single-user bottleneck games reduce to a max-flow question: the demand is
/// routable with bottleneck B iff maxflow(capacities scaled by B) >= demand.
TEST(CrossCheck, SingleUserLpMatchesMaxFlowBisection) {
  sim::Rng rng(99);
  for (int inst = 0; inst < 25; ++inst) {
    const int spines = 2 + static_cast<int>(rng.index(4));
    LeafSpineGame g = LeafSpineGame::uniform(2, spines, 0);
    for (int s = 0; s < spines; ++s) {
      g.up[0][static_cast<std::size_t>(s)] = 5 + rng.uniform() * 50;
      g.down[static_cast<std::size_t>(s)][1] = 5 + rng.uniform() * 50;
    }
    const double demand = 5 + rng.uniform() * 80;
    g.users.push_back({0, 1, demand});

    const double lp = optimal_bottleneck(g);

    // Bisection on B with max-flow feasibility.
    auto feasible = [&](double b) {
      MaxFlow mf(2 + spines);
      for (int s = 0; s < spines; ++s) {
        mf.add_edge(0, 2 + s, g.up[0][static_cast<std::size_t>(s)] * b);
        mf.add_edge(2 + s, 1, g.down[static_cast<std::size_t>(s)][1] * b);
      }
      return mf.solve(0, 1) >= demand - 1e-7;
    };
    double lo = 0, hi = 100;
    for (int it = 0; it < 60; ++it) {
      const double mid = (lo + hi) / 2;
      (feasible(mid) ? hi : lo) = mid;
    }
    EXPECT_NEAR(lp, hi, 1e-4) << "instance " << inst;
  }
}

/// The LP optimum must lower-bound every Nash equilibrium's bottleneck.
TEST(CrossCheck, OptimumLowerBoundsEveryEquilibrium) {
  sim::Rng rng(123);
  for (int inst = 0; inst < 20; ++inst) {
    LeafSpineGame g = LeafSpineGame::uniform(3, 3, 0);
    for (int l = 0; l < 3; ++l) {
      for (int s = 0; s < 3; ++s) {
        g.up[static_cast<std::size_t>(l)][static_cast<std::size_t>(s)] =
            10 + rng.uniform() * 40;
        g.down[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)] =
            10 + rng.uniform() * 40;
      }
    }
    g.users.push_back({0, 1, 10 + rng.uniform() * 20});
    g.users.push_back({0, 2, 10 + rng.uniform() * 20});
    g.users.push_back({1, 2, 10 + rng.uniform() * 20});
    const double opt = optimal_bottleneck(g);
    for (int start = 0; start < 5; ++start) {
      GameFlow f = random_flow(g, rng);
      best_response_dynamics(g, f);
      EXPECT_GE(network_bottleneck(g, f), opt - 1e-6);
    }
  }
}

/// Best response must never leave a user worse off, and must be a no-op at
/// its own fixed point.
TEST(CrossCheck, BestResponseIsImprovingAndIdempotent) {
  sim::Rng rng(7);
  LeafSpineGame g = LeafSpineGame::uniform(3, 3, 25);
  g.users.push_back({0, 2, 30});
  g.users.push_back({1, 2, 30});
  for (int trial = 0; trial < 10; ++trial) {
    GameFlow f = random_flow(g, rng);
    for (int u = 0; u < 2; ++u) {
      const double before = user_bottleneck(g, f, u);
      const double after = best_response(g, f, u);
      EXPECT_LE(after, before + 1e-9);
      // Idempotence: responding again cannot improve further.
      const double again = best_response(g, f, u);
      EXPECT_NEAR(after, again, 1e-6);
    }
  }
}

/// Flow conservation: every user's strategy sums to its demand after any
/// best-response step.
TEST(CrossCheck, BestResponseConservesDemand) {
  sim::Rng rng(11);
  LeafSpineGame g = LeafSpineGame::uniform(2, 4, 20);
  g.users.push_back({0, 1, 35});
  g.users.push_back({0, 1, 10});
  GameFlow f = random_flow(g, rng);
  for (int round = 0; round < 5; ++round) {
    for (int u = 0; u < 2; ++u) best_response(g, f, u);
  }
  for (std::size_t u = 0; u < 2; ++u) {
    double total = 0;
    for (double x : f.x[u]) total += x;
    EXPECT_NEAR(total, g.users[u].demand, 1e-6);
  }
}

/// The simplex solver agrees with hand-solvable LPs under permutations of
/// constraint order (exercises pivoting robustness).
TEST(CrossCheck, SimplexStableUnderConstraintPermutations) {
  // max 3x + 2y st x+y <= 4, x <= 2, y <= 3  -> optimum 10 at (2, 2).
  const std::vector<std::vector<double>> rows = {{1, 1}, {1, 0}, {0, 1}};
  const std::vector<double> rhs = {4, 2, 3};
  const int order[][3] = {{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}};
  for (const auto& ord : order) {
    std::vector<std::vector<double>> A;
    std::vector<double> b;
    for (int i : ord) {
      A.push_back(rows[static_cast<std::size_t>(i)]);
      b.push_back(rhs[static_cast<std::size_t>(i)]);
    }
    std::vector<double> x;
    Simplex lp(A, b, {3, 2});
    EXPECT_NEAR(lp.solve(x), 10.0, 1e-9);
    EXPECT_NEAR(x[0], 2.0, 1e-9);
    EXPECT_NEAR(x[1], 2.0, 1e-9);
  }
}

/// Max-flow conservation: assigned edge flows form a valid flow.
TEST(CrossCheck, MaxFlowEdgeFlowsConserve) {
  MaxFlow mf(5);
  mf.add_edge(0, 1, 7);   // 0
  mf.add_edge(0, 2, 5);   // 1
  mf.add_edge(1, 3, 4);   // 2
  mf.add_edge(2, 3, 6);   // 3
  mf.add_edge(1, 2, 3);   // 4
  mf.add_edge(3, 4, 12);  // 5
  const double total = mf.solve(0, 4);
  EXPECT_NEAR(total, 10.0, 1e-9);  // min cut {1->3 (4), 2->3 (6)}
  // Node 1: in = edge0, out = edge2 + edge4.
  EXPECT_NEAR(mf.edge_flow(0), mf.edge_flow(2) + mf.edge_flow(4), 1e-9);
  // Node 2: in = edge1 + edge4, out = edge3.
  EXPECT_NEAR(mf.edge_flow(1) + mf.edge_flow(4), mf.edge_flow(3), 1e-9);
  // Sink receives everything.
  EXPECT_NEAR(mf.edge_flow(5), total, 1e-9);
}

}  // namespace
}  // namespace conga::analysis
