// Parameterized property sweeps: invariants that must hold across the
// parameter space (paper §3.6 robustness claims, DRE/flowlet/ECMP laws).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/conga_lb.hpp"
#include "core/dre.hpp"
#include "core/flowlet_table.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "net/pod_fabric.hpp"
#include "tcp/flow.hpp"
#include "workload/flow_size_dist.hpp"

namespace conga {
namespace {

// --- DRE convergence across rates and time constants ---

class DreSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(DreSweep, SteadyStateTracksOfferedRate) {
  const double fraction = std::get<0>(GetParam());  // offered / capacity
  const int tau_us = std::get<1>(GetParam());
  core::DreConfig cfg;
  cfg.t_dre = sim::microseconds(tau_us) / 8;
  cfg.alpha = 0.125;
  const double cap = 10e9;
  core::Dre dre(cfg, cap);
  const std::uint32_t pkt = 1500;
  const auto gap =
      static_cast<sim::TimeNs>(pkt * 8.0 / (cap * fraction) * 1e9);
  sim::TimeNs t = 0;
  for (int i = 0; i < 4000; ++i) {
    dre.add(pkt, t);
    t += gap;
  }
  EXPECT_GT(dre.utilization(t), fraction * 0.8);
  EXPECT_LT(dre.utilization(t), fraction * 1.1);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndTaus, DreSweep,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8, 1.0),
                       ::testing::Values(40, 160, 500)),
    [](const auto& info) {
      return "load" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_tau" + std::to_string(std::get<1>(info.param)) + "us";
    });

// --- quantization bits (paper: robust for Q = 3..6) ---

class QuantSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantSweep, QuantizedMetricIsScaleInvariant) {
  core::DreConfig cfg;
  cfg.q_bits = GetParam();
  core::Dre dre(cfg, 10e9);
  // Half utilization must quantize near mid-scale for every Q.
  const auto half = static_cast<std::uint32_t>(10e9 / 8 * 160e-6 / 2);
  dre.add(half, 0);
  const double rel =
      static_cast<double>(dre.quantized(0)) / dre.max_metric();
  EXPECT_NEAR(rel, 0.5, 0.5 / dre.max_metric() + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Q1to6, QuantSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

// --- flowlet gap sweep: expiry exactly at the configured gap ---

class GapSweep : public ::testing::TestWithParam<int> {};

TEST_P(GapSweep, TimestampExpiryRespectsGap) {
  const sim::TimeNs gap = sim::microseconds(GetParam());
  core::FlowletTableConfig cfg;
  cfg.gap = gap;
  net::FlowKey k;
  k.src_host = 1;
  k.dst_host = 2;
  k.src_port = 3;
  k.dst_port = 4;
  // Boundary hit (and note a hit refreshes liveness)...
  core::FlowletTable hit(cfg);
  hit.install(k, 7, 0);
  EXPECT_EQ(hit.lookup(k, gap), 7);
  EXPECT_EQ(hit.lookup(k, 2 * gap), 7) << "the hit at t=gap refreshed it";
  // ...and expiry strictly past the gap on an untouched entry.
  core::FlowletTable miss(cfg);
  miss.install(k, 7, 0);
  EXPECT_EQ(miss.lookup(k, gap + 1), -1);
}

INSTANTIATE_TEST_SUITE_P(Gaps, GapSweep,
                         ::testing::Values(50, 100, 300, 500, 1000, 13000));

// --- ECMP uniformity across port counts ---

class EcmpSweep : public ::testing::TestWithParam<int> {};

TEST_P(EcmpSweep, HashUniformAcrossPorts) {
  const int spines = GetParam();
  net::TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = spines;
  cfg.hosts_per_leaf = 2;
  sim::Scheduler sched;
  net::Fabric fabric(sched, cfg, 7);
  fabric.install_lb(lb::ecmp());
  auto* balancer = fabric.leaf(0).load_balancer();
  std::vector<int> hist(static_cast<std::size_t>(spines), 0);
  const int n = 8000 * spines;
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.flow.src_host = 0;
    p.flow.dst_host = 2;
    p.flow.src_port = static_cast<std::uint16_t>(i);
    p.flow.dst_port = static_cast<std::uint16_t>(i >> 16);
    ++hist[static_cast<std::size_t>(balancer->select_uplink(p, 1, 0))];
  }
  for (int c : hist) EXPECT_NEAR(c, 8000, 800);
}

INSTANTIATE_TEST_SUITE_P(Ports, EcmpSweep, ::testing::Values(2, 3, 4, 8, 12));

// --- CONGA parameter robustness (paper §3.6): Tfl sweep ---

class TflSweep : public ::testing::TestWithParam<int> {};

TEST_P(TflSweep, AsymmetricThroughputStaysHigh) {
  // The Fig 2 scenario must stay near-optimal for Tfl in the paper's robust
  // range (300us..1ms) and degrade gracefully outside it.
  net::TopologyConfig topo;
  topo.num_leaves = 2;
  topo.num_spines = 2;
  topo.hosts_per_leaf = 4;
  topo.host_link_bps = 10e9;
  topo.fabric_link_bps = 40e9;
  topo.overrides.push_back({1, 1, 0, 0.5});

  core::CongaConfig conga_cfg;
  conga_cfg.flowlet.gap = sim::microseconds(GetParam());

  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 3);
  fabric.install_lb(core::conga(conga_cfg));
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(5);
  for (int h = 0; h < 4; ++h) {
    net::FlowKey key;
    key.src_host = h;
    key.dst_host = 4 + h;
    key.src_port = static_cast<std::uint16_t>(5000 + 16 * h);
    key.dst_port = 80;
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sched, fabric.host(h), fabric.host(4 + h), key, std::uint64_t{1} << 40,
        tcp_cfg, tcp::FlowCompleteFn{}));
    flows.back()->start();
  }
  sched.run_until(sim::milliseconds(60));
  std::uint64_t delivered = 0;
  for (int h = 4; h < 8; ++h) delivered += fabric.host(h).bytes_received();
  const double bps = delivered * 8.0 / 0.060;
  // 40G demand, 60G of paths: whole-range sanity is >= 60% of demand.
  EXPECT_GT(bps, 0.6 * 40e9) << "Tfl=" << GetParam() << "us";
}

INSTANTIATE_TEST_SUITE_P(TflRange, TflSweep,
                         ::testing::Values(100, 300, 500, 1000));

// --- TCP correctness across MTUs and flow sizes ---

class TcpSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(TcpSweep, DeliversExactlyOnce) {
  const auto [mtu, size] = GetParam();
  net::TopologyConfig topo;
  topo.num_leaves = 2;
  topo.num_spines = 2;
  topo.hosts_per_leaf = 2;
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 13);
  fabric.install_lb(core::conga());
  tcp::TcpConfig cfg;
  cfg.mtu = mtu;
  cfg.min_rto = sim::milliseconds(10);
  net::FlowKey key;
  key.src_host = 0;
  key.dst_host = 2;
  key.src_port = 600;
  key.dst_port = 700;
  tcp::TcpFlow flow(sched, fabric.host(0), fabric.host(2), key, size, cfg,
                    tcp::FlowCompleteFn{});
  flow.start();
  sched.run();
  ASSERT_TRUE(flow.complete());
  EXPECT_EQ(flow.sink().delivered(), size);
}

INSTANTIATE_TEST_SUITE_P(
    MtuAndSize, TcpSweep,
    ::testing::Combine(::testing::Values(1500u, 9000u),
                       ::testing::Values(std::uint64_t{1},
                                         std::uint64_t{1460},
                                         std::uint64_t{1461},
                                         std::uint64_t{100'000},
                                         std::uint64_t{5'000'000})));

// --- pod fabric sweep: delivery correctness across shapes ---

class PodSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PodSweep, TcpDeliversAcrossEveryShape) {
  const auto [pods, leaves, spines, cores] = GetParam();
  net::PodTopologyConfig cfg;
  cfg.num_pods = pods;
  cfg.leaves_per_pod = leaves;
  cfg.spines_per_pod = spines;
  cfg.num_cores = cores;
  cfg.hosts_per_leaf = 2;
  sim::Scheduler sched;
  net::PodFabric fabric(sched, cfg, 5);
  fabric.install_lb(core::conga());
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  // One intra-pod and one inter-pod (when pods > 1) flow.
  net::FlowKey intra;
  intra.src_host = 0;
  intra.dst_host = (leaves > 1) ? 2 : 1;  // another leaf in pod 0 if any
  intra.src_port = 100;
  intra.dst_port = 80;
  tcp::TcpFlow f1(sched, fabric.host(intra.src_host),
                  fabric.host(intra.dst_host), intra, 500'000, t,
                  tcp::FlowCompleteFn{});
  f1.start();
  std::unique_ptr<tcp::TcpFlow> f2;
  if (pods > 1) {
    net::FlowKey inter;
    inter.src_host = 1;
    inter.dst_host = fabric.num_hosts() - 1;  // last pod
    inter.src_port = 300;
    inter.dst_port = 80;
    f2 = std::make_unique<tcp::TcpFlow>(sched, fabric.host(inter.src_host),
                                        fabric.host(inter.dst_host), inter,
                                        500'000, t, tcp::FlowCompleteFn{});
    f2->start();
  }
  sched.run();
  EXPECT_TRUE(f1.complete());
  EXPECT_EQ(f1.sink().delivered(), 500'000u);
  if (f2) {
    EXPECT_TRUE(f2->complete());
    EXPECT_EQ(f2->sink().delivered(), 500'000u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PodSweep,
    ::testing::Values(std::make_tuple(2, 2, 2, 2), std::make_tuple(3, 2, 2, 1),
                      std::make_tuple(2, 1, 2, 3), std::make_tuple(2, 2, 4, 2),
                      std::make_tuple(4, 2, 2, 4),
                      std::make_tuple(2, 3, 3, 2)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "l" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param)) + "c" +
             std::to_string(std::get<3>(info.param));
    });

// --- FlowKey hashing sanity ---

class KeyHashSweep : public ::testing::TestWithParam<int> {};

TEST_P(KeyHashSweep, NearbyKeysHashFarApart) {
  const int base = GetParam();
  net::FlowKey a, b;
  a.src_host = base;
  a.dst_host = base + 1;
  a.src_port = 10;
  a.dst_port = 20;
  b = a;
  b.src_port = 11;  // minimal change
  // At least ~20 of 64 bits should differ (avalanche property).
  const auto x = a.hash() ^ b.hash();
  EXPECT_GE(__builtin_popcountll(x), 20);
}

INSTANTIATE_TEST_SUITE_P(Bases, KeyHashSweep,
                         ::testing::Values(0, 1, 17, 255, 4095, 100000));

}  // namespace
}  // namespace conga
