// Probe-plane tests: PathTable aging, HULA's learned tables, probe bytes on
// the wire, strict pay-for-what-you-use, probe loss under gray failure, and
// determinism of probe-driven experiments (serial and parallel).
#include <gtest/gtest.h>

#include "lb/factories.hpp"
#include "lb_ext/hula_lb.hpp"
#include "lb_ext/policies.hpp"
#include "net/fabric.hpp"
#include "probe/probe_plane.hpp"
#include "runtime/parallel_runner.hpp"
#include "workload/experiment.hpp"

namespace conga::probe {
namespace {

net::TopologyConfig topo22() {
  net::TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 2;
  return cfg;
}

lb_ext::HulaLb* hula_at(net::Fabric& fabric, int leaf) {
  return dynamic_cast<lb_ext::HulaLb*>(fabric.leaf(leaf).load_balancer());
}

// --- PathTable --------------------------------------------------------------

TEST(PathTable, StartsUnknownThenAges) {
  PathTable table(2, 2, sim::microseconds(500));
  EXPECT_EQ(table.metric(1, 0, 0), PathTable::kUnknown);
  EXPECT_EQ(table.updated_at(1, 0), -1);

  table.update(1, 0, 42, sim::microseconds(100));
  EXPECT_EQ(table.metric(1, 0, sim::microseconds(100)), 42);
  EXPECT_EQ(table.metric(1, 0, sim::microseconds(400)), 42);  // still fresh
  EXPECT_EQ(table.updated_at(1, 0), sim::microseconds(100));
  EXPECT_EQ(table.updates(), 1u);
  // The sibling entry is untouched.
  EXPECT_EQ(table.metric(1, 1, sim::microseconds(100)), PathTable::kUnknown);
  // Past age_after with no refresh the entry reads as unknown again, and a
  // refresh revives it.
  EXPECT_EQ(table.metric(1, 0, sim::milliseconds(1)), PathTable::kUnknown);
  table.update(1, 0, 7, sim::milliseconds(1));
  EXPECT_EQ(table.metric(1, 0, sim::milliseconds(1)), 7);
}

// --- probe round trips ------------------------------------------------------

TEST(ProbePlane, HulaLearnsEveryPathWithinAFewRounds) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo22(), 1);
  ASSERT_TRUE(lb_ext::install_policy(fabric, "hula"));
  sched.run_until(sim::milliseconds(1));  // 20 rounds at the 50 us period

  for (int leaf = 0; leaf < 2; ++leaf) {
    auto* lb = hula_at(fabric, leaf);
    ASSERT_NE(lb, nullptr);
    const ProbeAgent& agent = lb->agent();
    EXPECT_GT(agent.requests_sent(), 0u);
    EXPECT_GT(agent.replies_sent(), 0u);
    EXPECT_GT(agent.replies_received(), 0u);
    const net::LeafId other = 1 - leaf;
    for (int up = 0; up < 2; ++up) {
      EXPECT_NE(agent.table().metric(other, up, sched.now()),
                PathTable::kUnknown)
          << "leaf " << leaf << " uplink " << up;
    }
    EXPECT_GT(fabric.leaf(leaf).probes_to_fabric(), 0u);
    EXPECT_GT(fabric.leaf(leaf).probes_from_fabric(), 0u);
  }
}

TEST(ProbePlane, ProbesAreRealEncapsulatedPackets) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo22(), 1);
  ASSERT_TRUE(lb_ext::install_policy(fabric, "hula"));
  sched.run_until(sim::milliseconds(1));
  // No data traffic is running, so everything on the uplinks is probe
  // packets: probe_bytes (64) + kOverlayHeaderBytes (50) each.
  const std::uint32_t wire =
      ProbeConfig{}.probe_bytes + net::kOverlayHeaderBytes;
  for (int leaf = 0; leaf < 2; ++leaf) {
    for (const auto& up : fabric.leaf(leaf).uplinks()) {
      EXPECT_GT(up.link->bytes_sent(), 0u);
      EXPECT_EQ(up.link->bytes_sent() % wire, 0u);
    }
  }
}

// --- pay for what you use ---------------------------------------------------

TEST(ProbePlane, NoProbeStateUnlessAProbePolicyIsInstalled) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo22(), 1);
  const std::size_t before = sched.pending();
  ASSERT_TRUE(lb_ext::install_policy(fabric, "ecmp"));
  // Installing a probe-free policy schedules nothing.
  EXPECT_EQ(sched.pending(), before);
  sched.run_until(sim::milliseconds(1));
  for (int leaf = 0; leaf < 2; ++leaf) {
    EXPECT_EQ(fabric.leaf(leaf).probes_to_fabric(), 0u);
    EXPECT_EQ(fabric.leaf(leaf).probes_from_fabric(), 0u);
    for (const auto& up : fabric.leaf(leaf).uplinks()) {
      EXPECT_EQ(up.link->bytes_sent(), 0u);
    }
  }
  // ...while installing HULA does (one tick per leaf agent).
  ASSERT_TRUE(lb_ext::install_policy(fabric, "hula"));
  EXPECT_GT(sched.pending(), before);
}

TEST(ProbePlane, ReplacingHulaCancelsItsPendingRounds) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo22(), 1);
  const std::size_t before = sched.pending();
  ASSERT_TRUE(lb_ext::install_policy(fabric, "hula"));
  ASSERT_GT(sched.pending(), before);
  // Tearing the policy back down must not leave orphaned probe ticks that
  // would fire into destroyed agents or extend Scheduler::run().
  ASSERT_TRUE(lb_ext::install_policy(fabric, "ecmp"));
  EXPECT_EQ(sched.pending(), before);
}

// --- probe loss -------------------------------------------------------------

TEST(ProbePlane, GrayFailedPathGoesStaleAndStaysStale) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo22(), 1);
  ASSERT_TRUE(lb_ext::install_policy(fabric, "hula"));
  sched.run_until(sim::milliseconds(1));
  auto* lb = hula_at(fabric, 0);
  ASSERT_NE(lb, nullptr);
  ASSERT_NE(lb->agent().table().metric(1, 0, sched.now()),
            PathTable::kUnknown);

  // Kill every packet on leaf 0's uplink 0: its requests die outbound, so
  // (dst 1, uplink 0) stops refreshing and ages out...
  fabric.leaf(0).uplinks()[0].link->set_gray_failure(1.0, 0.0, 99);
  sched.run_until(sim::milliseconds(3));
  EXPECT_EQ(lb->agent().table().metric(1, 0, sched.now()),
            PathTable::kUnknown);
  // ...while uplink 1 keeps answering and stays fresh.
  EXPECT_NE(lb->agent().table().metric(1, 1, sched.now()),
            PathTable::kUnknown);
}

// --- determinism ------------------------------------------------------------

workload::ExperimentConfig hula_cell(std::uint64_t traffic_seed) {
  workload::ExperimentConfig cfg;
  cfg.topo = topo22();
  cfg.topo.hosts_per_leaf = 4;
  cfg.load = 0.4;
  cfg.lb = lb_ext::hula();
  cfg.warmup = sim::milliseconds(1);
  cfg.measure = sim::milliseconds(5);
  cfg.max_drain = sim::seconds(1.0);
  cfg.traffic_seed = traffic_seed;
  return cfg;
}

TEST(ProbePlane, HulaExperimentIsDeterministic) {
  const auto a = workload::run_fct_experiment(hula_cell(7));
  const auto b = workload::run_fct_experiment(hula_cell(7));
  ASSERT_GT(a.flows, 0u);
  EXPECT_EQ(a.fct_digest, b.fct_digest);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.probes_received, b.probes_received);
  EXPECT_GT(a.probes_sent, 0u);
  EXPECT_GE(a.probes_sent, a.probes_received);
}

TEST(ProbePlane, HulaDigestsMatchAcrossJobCounts) {
  auto run = [](int jobs) {
    return runtime::parallel_map<std::uint64_t>(2, jobs, [](std::size_t i) {
      return workload::run_fct_experiment(hula_cell(7 + i)).fct_digest;
    });
  };
  const auto serial = run(1);
  const auto threaded = run(2);
  ASSERT_EQ(serial.size(), 2u);
  EXPECT_EQ(serial, threaded);
  EXPECT_NE(serial[0], serial[1]);  // different seeds: genuinely distinct
}

}  // namespace
}  // namespace conga::probe
