// Tests for the competitor load balancers (LetFlow, DRILL, Presto) and the
// policy registry. The HULA/probe-plane behaviour is covered by
// probe_plane_test.cpp.
#include <gtest/gtest.h>

#include <set>

#include "lb/factories.hpp"
#include "lb_ext/policies.hpp"
#include "net/fabric.hpp"

namespace conga::lb_ext {
namespace {

net::TopologyConfig topo(int spines = 4) {
  net::TopologyConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = spines;
  cfg.hosts_per_leaf = 2;
  return cfg;
}

net::Packet packet_for_flow(int i, std::uint32_t size = 1500) {
  net::Packet p;
  p.flow.src_host = 0;
  p.flow.dst_host = 2;
  p.flow.src_port = static_cast<std::uint16_t>(i);
  p.flow.dst_port = static_cast<std::uint16_t>(i >> 16);
  p.size_bytes = size;
  return p;
}

// --- LetFlow ----------------------------------------------------------------

TEST(LetFlowLb, OwnsIndependentDefaultGap) {
  // The 500us default belongs to LetFlowConfig itself, not to whatever
  // FlowletTableConfig's default happens to be for CONGA.
  LetFlowConfig cfg;
  EXPECT_EQ(cfg.flowlet.gap, sim::microseconds(500));
}

TEST(LetFlowLb, FlowletsStickWithinGap) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(4), 5);
  fabric.install_lb(letflow());
  auto* lb = fabric.leaf(0).load_balancer();
  net::Packet p = packet_for_flow(7);
  const int first = lb->select_uplink(p, 1, 0);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(lb->select_uplink(p, 1, sim::microseconds(100) * i), first);
  }
}

TEST(LetFlowLb, RerollsUniformlyOnExpiry) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(4), 5);
  fabric.install_lb(letflow());
  auto& leaf = fabric.leaf(0);
  // Bury one uplink in local congestion: LetFlow must keep picking it with
  // the same probability — the scheme is congestion-oblivious by definition.
  leaf.uplinks()[0].link->dre().add(1 << 22, 0);
  net::Packet p = packet_for_flow(8);
  std::set<int> used;
  for (int i = 0; i < 60; ++i) {
    // 1 ms steps, well past the 500 us gap: every call starts a flowlet.
    used.insert(
        leaf.load_balancer()->select_uplink(p, 1, sim::milliseconds(i)));
  }
  EXPECT_EQ(used.size(), 4u);  // all uplinks drawn, congested one included
}

// --- DRILL ------------------------------------------------------------------

TEST(DrillLb, MemoryWinsTiesSoEqualQueuesNeverMoveTheFlow) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(4), 5);
  fabric.install_lb(drill());
  auto* lb = dynamic_cast<DrillLb*>(fabric.leaf(0).load_balancer());
  ASSERT_NE(lb, nullptr);
  net::Packet p = packet_for_flow(9);
  const int first = lb->select_uplink(p, 1, 0);
  EXPECT_EQ(lb->remembered(1), first);
  // All queues are empty (all tie): the pinned tie-break says the
  // remembered port wins, so the decision must never move.
  for (int i = 1; i <= 50; ++i) {
    EXPECT_EQ(lb->select_uplink(p, 1, i), first);
  }
}

TEST(DrillLb, MovesToTheShorterQueueAndResticksThere) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  fabric.install_lb(drill());
  auto& leaf = fabric.leaf(0);
  auto* lb = dynamic_cast<DrillLb*>(leaf.load_balancer());
  ASSERT_NE(lb, nullptr);
  net::Packet p = packet_for_flow(10);
  const int first = lb->select_uplink(p, 1, 0);
  const int other = 1 - first;
  // Pile real packets onto the remembered uplink's egress queue.
  for (int i = 0; i < 10; ++i) {
    net::PacketPtr filler = net::make_packet();
    filler->flow = packet_for_flow(1000 + i).flow;
    filler->size_bytes = 1500;
    leaf.uplinks()[static_cast<std::size_t>(first)].link->send(
        std::move(filler));
  }
  ASSERT_GT(leaf.uplinks()[static_cast<std::size_t>(first)].link->queue()
                .bytes(),
            0u);
  // Two-choices sampling finds the empty uplink within a few packets, and
  // once remembered it is strictly cheaper, so the decision stays put.
  int last = first;
  for (int i = 0; i < 20; ++i) last = lb->select_uplink(p, 1, i);
  EXPECT_EQ(last, other);
  EXPECT_EQ(lb->remembered(1), other);
}

TEST(DrillPolicy, InstallsAndRemovesSpineMode) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  ASSERT_TRUE(install_policy(fabric, "drill"));
  EXPECT_TRUE(fabric.spine(0).drill_enabled());
  EXPECT_TRUE(fabric.spine(1).drill_enabled());
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "DRILL");
  // Switching policy must tear the spine mode back down.
  ASSERT_TRUE(install_policy(fabric, "conga"));
  EXPECT_FALSE(fabric.spine(0).drill_enabled());
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "CONGA");
}

// --- Presto -----------------------------------------------------------------

TEST(PrestoLb, RotatesEvery64KBAndCyclesPorts) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(4), 5);
  fabric.install_lb(presto());
  auto* lb = dynamic_cast<PrestoLb*>(fabric.leaf(0).load_balancer());
  ASSERT_NE(lb, nullptr);
  net::Packet p = packet_for_flow(11, 1500);
  // 44 * 1500 = 66000 >= 64 KB: packets 1..44 ride the first cell (the
  // rotation happens *after* the cell fills), packet 45 starts the next.
  const int first = lb->select_uplink(p, 1, 0);
  for (int i = 2; i <= 44; ++i) {
    EXPECT_EQ(lb->select_uplink(p, 1, i), first) << "packet " << i;
  }
  EXPECT_EQ(lb->rotations(), 1u);
  // Drive three more full cells: every run is exactly 44 packets on one
  // port, and consecutive runs step cyclically through the viable uplinks.
  for (int cell = 1; cell <= 3; ++cell) {
    const int expect_port = (first + cell) % 4;
    for (int i = 0; i < 44; ++i) {
      EXPECT_EQ(lb->select_uplink(p, 1, 100 + i), expect_port)
          << "cell " << cell << " packet " << i;
    }
    EXPECT_EQ(lb->rotations(), static_cast<std::uint64_t>(cell) + 1);
  }
}

TEST(PrestoLb, DistinctFlowsStartOnSpreadPorts) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(4), 5);
  fabric.install_lb(presto());
  auto* lb = fabric.leaf(0).load_balancer();
  std::set<int> used;
  for (int i = 0; i < 64; ++i) {
    net::Packet p = packet_for_flow(i);
    used.insert(lb->select_uplink(p, 1, 0));
  }
  EXPECT_EQ(used.size(), 4u);  // hash-offset starts cover every uplink
}

// --- registry ---------------------------------------------------------------

TEST(PolicyRegistry, KnowsEveryPolicyAndRejectsUnknown) {
  EXPECT_NE(find_policy("letflow"), nullptr);
  EXPECT_NE(find_policy("drill"), nullptr);
  EXPECT_NE(find_policy("presto"), nullptr);
  EXPECT_NE(find_policy("hula"), nullptr);
  EXPECT_NE(find_policy("conga"), nullptr);
  EXPECT_EQ(find_policy("bogus"), nullptr);
  EXPECT_FALSE(static_cast<bool>(make_policy("bogus")));
  // The error-message name list carries every registered policy.
  const std::string names = policy_names();
  for (const PolicyInfo& p : policy_catalog()) {
    EXPECT_NE(names.find(p.name), std::string::npos) << p.name;
  }
}

TEST(PolicyRegistry, UnknownNameLeavesFabricUntouched) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  ASSERT_TRUE(install_policy(fabric, "ecmp"));
  EXPECT_FALSE(install_policy(fabric, "bogus"));
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "ECMP");
  EXPECT_FALSE(fabric.spine(0).drill_enabled());
}

TEST(PolicyRegistry, NamesAreStable) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo(2), 5);
  ASSERT_TRUE(install_policy(fabric, "letflow"));
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "LetFlow");
  ASSERT_TRUE(install_policy(fabric, "drill"));
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "DRILL");
  ASSERT_TRUE(install_policy(fabric, "presto"));
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "Presto");
  ASSERT_TRUE(install_policy(fabric, "hula"));
  EXPECT_EQ(fabric.leaf(0).load_balancer()->name(), "HULA");
}

TEST(PolicyRegistry, ReachabilityRespectedByNewPolicies) {
  // Same scenario as lb_test's AllBalancersAvoidDeadSpines, for the
  // competitor suite: spine 1 loses its downlink to leaf 0, so leaf 1 must
  // never send leaf-0 traffic up to spine 1.
  net::TopologyConfig cfg = topo(2);
  cfg.overrides.push_back({0, 1, 0, 0.0});
  for (const char* policy : {"letflow", "drill", "presto", "hula"}) {
    sim::Scheduler sched;
    net::Fabric fabric(sched, cfg, 5);
    ASSERT_TRUE(install_policy(fabric, policy));
    auto& leaf1 = fabric.leaf(1);
    ASSERT_EQ(leaf1.uplinks().size(), 2u);
    int spine1_uplink = -1;
    for (int i = 0; i < 2; ++i) {
      if (leaf1.uplinks()[static_cast<std::size_t>(i)].spine == 1) {
        spine1_uplink = i;
      }
    }
    ASSERT_GE(spine1_uplink, 0);
    for (int i = 0; i < 64; ++i) {
      net::Packet p;
      p.flow.src_host = 2;
      p.flow.dst_host = 0;
      p.flow.src_port = static_cast<std::uint16_t>(i);
      p.flow.dst_port = 9;
      p.size_bytes = 1500;
      EXPECT_NE(leaf1.load_balancer()->select_uplink(p, 0, i), spine1_uplink)
          << policy;
    }
  }
}

}  // namespace
}  // namespace conga::lb_ext
