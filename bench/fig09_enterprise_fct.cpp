// Figure 9: FCT statistics for the enterprise workload on the baseline
// testbed topology (Fig 7a: 2 leaves x 32 x 10G hosts, 2 spines, 2x40G
// uplinks each, 2:1 oversubscription), loads 10-90%.
//
// Paper shape: all schemes similar overall except MPTCP up to ~25% worse
// (driven by ~50% worse small-flow FCT); CONGA slightly worse than ECMP for
// small flows (~12-19% at 50-80% load) but up to ~20% better for large
// flows.
#include "bench_util.hpp"
#include "fct_grid.hpp"

using namespace conga;

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  const int jobs = bench::jobs_mode(argc, argv);
  bench::print_header("Fig 9 — enterprise workload FCT (baseline topology)",
                      full, jobs);

  bench::GridConfig g;
  g.topo = net::testbed_baseline();
  if (!full) g.topo.hosts_per_leaf = 16;  // scaled: 32 hosts total
  g.dist = workload::enterprise();
  g.loads_pct = full ? std::vector<int>{10, 20, 30, 40, 50, 60, 70, 80, 90}
                     : std::vector<int>{10, 30, 50, 70, 90};
  g.warmup = sim::milliseconds(10);
  g.measure = full ? sim::milliseconds(200) : sim::milliseconds(50);
  g.max_drain = full ? sim::seconds(3.0) : sim::seconds(1.5);
  // The testbed ran Linux TCP (200 ms minRTO) for minutes; our scaled
  // windows need DC-granularity timers to avoid censoring entire runs on a
  // single timeout. EXPERIMENTS.md discusses the substitution.
  g.tcp.min_rto = sim::milliseconds(10);

  run_and_print_grid(g, jobs);
  return 0;
}
