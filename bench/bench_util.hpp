// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints the rows/series of one table or figure from the
// paper. By default it runs a *scaled* configuration (smaller host counts,
// tens of simulated milliseconds) so the whole suite completes in minutes;
// passing --full or setting CONGA_BENCH_FULL=1 selects paper-scale
// parameters. Each bench prints which mode it ran.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/parallel_runner.hpp"

namespace conga::bench {

inline bool full_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  const char* env = std::getenv("CONGA_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// Worker threads for independent experiment cells: `--jobs N` beats
/// CONGA_BENCH_JOBS beats hardware concurrency; 1 = sequential (today's
/// behaviour). Results are deterministic for any value (see
/// runtime/parallel_runner.hpp).
inline int jobs_mode(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const int n = std::atoi(argv[i + 1]);
      if (n > 0) return n;
    }
  }
  return runtime::default_jobs();
}

inline void print_header(const std::string& title, bool full) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("mode: %s\n", full ? "FULL (paper-scale)" : "SCALED (default; --full for paper-scale)");
  std::printf("==============================================================\n");
}

inline void print_header(const std::string& title, bool full, int jobs) {
  print_header(title, full);
  std::printf("jobs: %d (--jobs N / CONGA_BENCH_JOBS to change)\n", jobs);
}

/// Prints one row of right-aligned columns: label then numeric cells.
inline void print_row(const std::string& label,
                      const std::vector<double>& cells,
                      const char* fmt = "%10.3f") {
  std::printf("%-14s", label.c_str());
  for (double c : cells) std::printf(fmt, c);
  std::printf("\n");
}

inline void print_cols(const std::string& label,
                       const std::vector<std::string>& names) {
  std::printf("%-14s", label.c_str());
  for (const auto& n : names) std::printf("%10s", n.c_str());
  std::printf("\n");
}

}  // namespace conga::bench
