// §7 "Discussion" extensions, quantified:
//
//  * Incremental deployment — CONGA does not need to control all traffic:
//    leaves running ECMP just create bandwidth asymmetry that CONGA-enabled
//    leaves adapt around, and "CONGA reduces fabric congestion to the
//    benefit of all traffic". We run the link-failure scenario with 0%, 50%
//    (one leaf), and 100% of leaves running CONGA and report FCT per
//    sub-population.
//
//  * CONGA + DCTCP — the paper's transport-independence claim: CONGA is
//    oblivious to the end-host congestion control. We pair it with DCTCP
//    (ECN-based) and verify load balancing still works while queues shrink.
#include <cstdio>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "stats/samplers.hpp"
#include "workload/experiment.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

void incremental_deployment(bool full) {
  std::printf("--- incremental deployment (link-failure topology, 60%% load) "
              "---\n");
  std::printf("%-26s%14s%14s\n", "deployment", "median nFCT", "mean nFCT");
  struct Mix {
    const char* name;
    net::Fabric::LbFactory factory;
  };
  // A factory that installs CONGA only on even-numbered leaves.
  auto mixed = [](net::LeafSwitch& leaf, const net::TopologyConfig& topo,
                  std::uint64_t seed) -> std::unique_ptr<lb::LoadBalancer> {
    if (leaf.id() % 2 == 0) {
      return core::conga()(leaf, topo, seed);
    }
    return lb::ecmp()(leaf, topo, seed);
  };
  const Mix mixes[] = {
      {"ECMP everywhere", lb::ecmp()},
      {"CONGA on half the leaves", mixed},
      {"CONGA everywhere", core::conga()},
  };
  for (const Mix& m : mixes) {
    workload::ExperimentConfig cfg;
    cfg.topo = net::testbed_link_failure();
    if (!full) cfg.topo.hosts_per_leaf = 16;
    cfg.dist = workload::enterprise();
    cfg.load = 0.6;
    tcp::TcpConfig t;
    t.min_rto = sim::milliseconds(10);
    cfg.transport = tcp::make_tcp_flow_factory(t);
    cfg.lb = m.factory;
    cfg.warmup = sim::milliseconds(10);
    cfg.measure = full ? sim::milliseconds(200) : sim::milliseconds(60);
    cfg.max_drain = sim::seconds(2.0);
    const auto r = workload::run_fct_experiment(cfg);
    std::printf("%-26s%14.2f%14.2f\n", m.name, r.median_norm_fct,
                r.avg_norm_fct);
  }
  std::printf("paper: partial deployment already helps — CONGA's traffic "
              "works around\nthe rest, reducing congestion for everyone.\n\n");
}

void conga_with_dctcp(bool full) {
  std::printf("--- transport independence: CONGA+TCP vs CONGA+DCTCP ---\n");
  std::printf("%-18s%14s%14s%18s\n", "transport", "median nFCT",
              "mean nFCT", "max fabric queue");
  for (const bool dctcp : {false, true}) {
    net::TopologyConfig topo = net::testbed_link_failure();
    if (!full) topo.hosts_per_leaf = 16;
    if (dctcp) topo.ecn_threshold_bytes = 100'000;
    sim::Scheduler sched;
    net::Fabric fabric(sched, topo, 31);
    fabric.install_lb(core::conga());
    tcp::TcpConfig t;
    t.min_rto = sim::milliseconds(10);
    t.dctcp = dctcp;
    workload::TrafficGenConfig gc;
    gc.load = 0.6;
    gc.stop = full ? sim::milliseconds(200) : sim::milliseconds(70);
    gc.measure_start = sim::milliseconds(10);
    gc.measure_stop = gc.stop - sim::milliseconds(10);
    workload::TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(t),
                                   workload::enterprise(), gc);
    gen.start();
    workload::run_with_drain(sched, gen, gc.stop, sim::seconds(2.0));
    stats::Summary norm;
    for (const auto& r : gen.collector().records()) {
      norm.add(static_cast<double>(r.fct) /
               static_cast<double>(std::max<sim::TimeNs>(r.optimal_fct, 1)));
    }
    std::uint64_t max_q = 0;
    for (const net::Link* l : fabric.fabric_links()) {
      max_q = std::max(max_q, l->queue().stats().max_bytes_seen);
    }
    std::printf("%-18s%14.2f%14.2f%15.1f KB\n",
                dctcp ? "CONGA+DCTCP" : "CONGA+TCP", norm.median(),
                norm.mean(), static_cast<double>(max_q) / 1e3);
  }
  std::printf("CONGA needs no TCP modifications (§2.1 property 2), and "
              "pairing it with an\nECN-based transport composes: balancing "
              "unchanged, fabric queues capped\nnear the marking "
              "threshold.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header("§7 discussion — incremental deployment & transports",
                      full);
  incremental_deployment(full);
  conga_with_dctcp(full);
  return 0;
}
