// Figure 15: large-scale simulations with the web-search workload, 40G
// fabric links and 3:1 oversubscription — (a) 10G access links (384
// servers), (b) 40G access links (96 servers). Reports overall average FCT
// normalised to ECMP.
//
// Paper shape: CONGA's win over ECMP is much larger when access speed is
// close to fabric speed (40G/40G: ~30% better even at 30% load) than with a
// 10G edge (5-10% at 30% load), because slow edges let each fabric link
// absorb several collided flows.
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "runtime/parallel_runner.hpp"
#include "workload/experiment.hpp"

using namespace conga;

namespace {

void run_variant(const char* title, double host_bps, int hosts_per_leaf,
                 int leaves, int spines, bool full, int jobs) {
  std::printf("\n===== %s =====\n", title);
  net::TopologyConfig topo;
  topo.num_leaves = leaves;
  topo.num_spines = spines;
  topo.hosts_per_leaf = hosts_per_leaf;
  topo.links_per_spine = 1;
  topo.host_link_bps = host_bps;
  topo.fabric_link_bps = 40e9;

  const std::vector<int> loads = full ? std::vector<int>{30, 40, 50, 60, 70, 80}
                                      : std::vector<int>{30, 50, 70};
  std::printf("%-12s", "load(%)");
  for (int l : loads) std::printf("%10d", l);
  std::printf("\n");

  // Scheme-major flattened grid, run concurrently; results committed in
  // deterministic cell order regardless of which worker finishes first.
  std::mutex progress_mu;
  const std::size_t n_loads = loads.size();
  const std::vector<workload::ExperimentResult> cells =
      runtime::parallel_map<workload::ExperimentResult>(
          2 * n_loads, jobs, [&](std::size_t i) {
            const bool use_conga = i >= n_loads;
            const int load = loads[i % n_loads];
            workload::ExperimentConfig cfg;
            cfg.topo = topo;
            cfg.dist = workload::web_search();
            cfg.load = load / 100.0;
            cfg.lb = use_conga ? core::conga() : lb::ecmp();
            tcp::TcpConfig t;
            t.min_rto = sim::milliseconds(10);
            cfg.transport = tcp::make_tcp_flow_factory(t);
            cfg.warmup = sim::milliseconds(10);
            cfg.measure = full ? sim::milliseconds(150) : sim::milliseconds(60);
            cfg.max_drain = sim::seconds(2.0);
            workload::ExperimentResult r = workload::run_fct_experiment(cfg);
            {
              const std::lock_guard<std::mutex> lock(progress_mu);
              std::fprintf(stderr, "  [%s @ %d%%: %zu flows]\n",
                           use_conga ? "CONGA" : "ECMP", load, r.flows);
            }
            return r;
          });

  std::vector<double> ecmp_avg, conga_avg, ecmp_med, conga_med;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bool use_conga = i >= n_loads;
    (use_conga ? conga_avg : ecmp_avg).push_back(cells[i].avg_norm_fct);
    (use_conga ? conga_med : ecmp_med).push_back(cells[i].median_norm_fct);
  }
  std::printf("%-12s", "ECMP");
  for (std::size_t i = 0; i < loads.size(); ++i) std::printf("%10.2f", 1.0);
  std::printf("\n%-12s", "CONGA(avg)");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::printf("%10.2f", conga_avg[i] / ecmp_avg[i]);
  }
  std::printf("\n%-12s", "CONGA(med)");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::printf("%10.2f", conga_med[i] / ecmp_med[i]);
  }
  std::printf("\n(FCT normalised to ECMP; < 1 means CONGA wins. avg is "
              "RTO-tail-sensitive\nat scaled sample sizes; med is the robust "
              "view.)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  const int jobs = bench::jobs_mode(argc, argv);
  bench::print_header(
      "Fig 15 — large-scale web-search workload, 3:1 oversubscription", full,
      jobs);

  if (full) {
    // Paper scale: 8 leaves x 48 x 10G / 12 spines... capped at what the
    // 4-bit LBTag allows with single links: 8 leaves, 12 spines.
    run_variant("(a) 10G access links, 384 servers", 10e9, 48, 8, 4, full,
                jobs);
    run_variant("(b) 40G access links, 96 servers", 40e9, 12, 8, 4, full,
                jobs);
  } else {
    run_variant("(a) 10G access links, 96 servers (scaled)", 10e9, 24, 4, 2,
                full, jobs);
    run_variant("(b) 40G access links, 24 servers (scaled)", 40e9, 6, 4, 2,
                full, jobs);
  }
  return 0;
}
