// Theorem 2 / §6.2: the traffic imbalance of randomized per-flow placement
// decays as 1/sqrt(lambda_e t), where the effective rate lambda_e shrinks
// with (1 + CV^2) of the flow-size distribution — the analytic reason the
// data-mining workload needs flowlets while the enterprise workload is fine
// with per-flow ECMP.
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/imbalance_model.hpp"
#include "bench_util.hpp"
#include "workload/flow_size_dist.hpp"

using namespace conga;
using namespace conga::analysis;
using namespace conga::workload;

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header("Theorem 2 — E[chi(t)] vs time and flow-size variance",
                      full);

  const std::vector<double> times = {0.05, 0.1, 0.25, 0.5, 1.0, 2.0};
  const int n_links = 4;
  const double lambda = 20000;

  struct Row {
    const char* name;
    FlowSizeDist dist;
  };
  const std::vector<Row> rows = {
      {"fixed-size", fixed_size(enterprise().mean_bytes())},
      {"web-search", web_search()},
      {"enterprise", enterprise()},
      {"data-mining", data_mining()},
  };

  std::printf("%-14s%8s%10s |", "workload", "CV", "lambda_e");
  for (double t : times) std::printf("%9.2fs", t);
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-14s%8.2f%10.1f |", row.name,
                row.dist.coeff_of_variation(),
                effective_rate(row.dist, n_links, lambda));
    for (double t : times) {
      ImbalanceParams p;
      p.n_links = n_links;
      p.lambda = lambda;
      p.t_seconds = t;
      p.trials = full ? 400 : 120;
      std::printf("%10.4f", expected_imbalance(row.dist, p));
    }
    std::printf("\n");
  }

  std::printf("\nanalytic bound 1/sqrt(lambda_e t):\n%-14s%18s |", "", "");
  for (double t : times) std::printf("%9.2fs", t);
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-14s%18s |", row.name, "");
    for (double t : times) {
      std::printf("%10.4f", theorem2_bound(row.dist, n_links, lambda, t));
    }
    std::printf("\n");
  }

  // 1/sqrt(t) decay check on the fixed-size workload.
  ImbalanceParams p;
  p.n_links = n_links;
  p.lambda = lambda;
  p.trials = full ? 600 : 200;
  p.t_seconds = 0.1;
  const double chi1 = expected_imbalance(rows[0].dist, p);
  p.t_seconds = 1.6;
  const double chi2 = expected_imbalance(rows[0].dist, p);
  std::printf("\n1/sqrt(t) check: chi(0.1s)/chi(1.6s) = %.2f (expected ~%.2f)\n",
              chi1 / chi2, std::sqrt(16.0));
  return 0;
}
