// Figure 8: the empirical traffic distributions — flow-size CDF and the
// bytes CDF — for the enterprise and data-mining workloads (plus the
// web-search distribution used by the Fig 15 simulations).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workload/flow_size_dist.hpp"

using namespace conga::workload;

int main(int argc, char** argv) {
  const bool full = conga::bench::full_mode(argc, argv);
  conga::bench::print_header("Fig 8 — empirical flow-size distributions", full);

  std::vector<double> sizes;
  for (double s = 1e2; s <= 1e9 + 1; s *= 10) sizes.push_back(s);

  for (const FlowSizeDist* d : {&enterprise(), &data_mining(), &web_search()}) {
    std::printf("\n%s (mean %.2e B, coeff-of-variation %.2f)\n",
                d->name().c_str(), d->mean_bytes(), d->coeff_of_variation());
    std::printf("  %-12s", "size");
    for (double s : sizes) std::printf("%8.0e", s);
    std::printf("\n  %-12s", "flows CDF");
    for (double s : sizes) std::printf("%8.3f", d->cdf(s));
    std::printf("\n  %-12s", "bytes CDF");
    for (double s : sizes) std::printf("%8.3f", d->byte_cdf(s));
    std::printf("\n");
  }

  std::printf(
      "\npaper checkpoints: enterprise ~50%% of bytes from flows < 35MB "
      "(here: %.2f);\ndata-mining ~95%% of bytes from flows > 35MB "
      "(here: %.2f)\n",
      enterprise().byte_cdf(35e6), 1.0 - data_mining().byte_cdf(35e6));
  return 0;
}
