// Ablations of CONGA's design parameters and choices (§3.6 "Parameter
// Choices" and §7 "Other path metrics"):
//   * Q, the congestion-metric quantization bits (paper: robust for 3-6),
//   * tau, the DRE time constant (paper: robust for 100-500 us),
//   * Tfl, the flowlet inactivity gap (reordering vs congestion trade-off;
//     13 ms == CONGA-Flow),
//   * CE path aggregation: max (paper) vs clamped sum (§7),
//   * flowlet expiry: exact timestamps vs the hardware age-bit,
//   * feedback selection: changed-first vs plain round-robin.
//
// Each variant runs the link-failure scenario (where congestion-awareness
// matters most) at 60% load and reports the overall normalised FCT.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "workload/experiment.hpp"

using namespace conga;

namespace {

double run_variant(const core::CongaConfig& conga_cfg,
                   const core::DreConfig& dre, bool ce_sum, bool full,
                   int dupack_segments = 3) {
  workload::ExperimentConfig cfg;
  cfg.topo = net::testbed_link_failure();
  if (!full) cfg.topo.hosts_per_leaf = 16;
  cfg.topo.dre = dre;
  cfg.topo.ce_sum = ce_sum;
  cfg.dist = workload::enterprise();
  cfg.load = 0.6;
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  t.dupack_segments = dupack_segments;
  cfg.transport = tcp::make_tcp_flow_factory(t);
  cfg.lb = core::conga(conga_cfg);
  cfg.warmup = sim::milliseconds(10);
  cfg.measure = full ? sim::milliseconds(150) : sim::milliseconds(50);
  cfg.max_drain = sim::seconds(2.0);
  return workload::run_fct_experiment(cfg).avg_norm_fct;
}

void row(const std::string& label, double v, double baseline) {
  std::printf("%-34s%12.2f%+11.1f%%\n", label.c_str(), v,
              (v / baseline - 1) * 100);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header(
      "Ablations — CONGA parameters on the link-failure scenario @60% load",
      full);

  const core::CongaConfig def_conga;
  const core::DreConfig def_dre;
  const double baseline = run_variant(def_conga, def_dre, false, full);
  std::printf("%-34s%12s%12s\n", "variant", "normFCT", "vs default");
  row("default (Q=3, tau=160us, Tfl=500us)", baseline, baseline);

  std::printf("\n-- quantization bits Q --\n");
  for (int q : {1, 2, 4, 6}) {
    core::DreConfig d = def_dre;
    d.q_bits = q;
    row("Q=" + std::to_string(q), run_variant(def_conga, d, false, full),
        baseline);
  }

  std::printf("\n-- DRE time constant tau --\n");
  for (int tau_us : {40, 100, 500, 1000}) {
    core::DreConfig d = def_dre;
    d.t_dre = sim::microseconds(tau_us) / 8;
    d.alpha = 0.125;
    row("tau=" + std::to_string(tau_us) + "us",
        run_variant(def_conga, d, false, full), baseline);
  }

  std::printf("\n-- flowlet gap Tfl --\n");
  for (int tfl_us : {100, 300, 1000, 13000}) {
    core::CongaConfig c = def_conga;
    c.flowlet.gap = sim::microseconds(tfl_us);
    row("Tfl=" + std::to_string(tfl_us) + "us" +
            (tfl_us == 13000 ? " (CONGA-Flow)" : ""),
        run_variant(c, def_dre, false, full), baseline);
  }

  std::printf("\n-- design choices --\n");
  row("CE aggregation = sum (§7)", run_variant(def_conga, def_dre, true, full),
      baseline);
  {
    core::CongaConfig c = def_conga;
    c.flowlet.expiry = core::FlowletExpiry::kAgeBit;
    row("age-bit flowlet expiry (ASIC)", run_variant(c, def_dre, false, full),
        baseline);
  }
  {
    core::CongaConfig c = def_conga;
    c.feedback_favor_changed = false;
    row("plain round-robin feedback", run_variant(c, def_dre, false, full),
        baseline);
  }
  {
    core::CongaConfig c = def_conga;
    c.metric_age_after = sim::milliseconds(1);
    row("metric aging = 1ms", run_variant(c, def_dre, false, full), baseline);
  }
  {
    // Fig 1's lowest branch: per-packet CONGA is optimal *given* a
    // reordering-resilient transport. Tfl ~ 0 splits every packet; the
    // transport tolerates 64 segments of reordering before inferring loss.
    core::CongaConfig c = def_conga;
    c.flowlet.gap = 1;  // 1 ns: every packet is its own flowlet
    row("per-packet CONGA + std TCP", run_variant(c, def_dre, false, full),
        baseline);
    row("per-packet CONGA + reorder-resilient TCP",
        run_variant(c, def_dre, false, full, /*dupack_segments=*/64),
        baseline);
  }

  std::printf("\npaper: performance is 'fairly robust' for Q=3-6, "
              "tau=100-500us, Tfl=300us-1ms.\n");
  return 0;
}
