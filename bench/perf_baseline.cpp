// perf_baseline — machine-readable performance baseline (BENCH_core.json).
//
// Times the simulator's hot-path primitives, a single-simulation events/sec
// figure, the wall-clock of a small scheme x load grid sequentially vs under
// the parallel experiment runner, telemetry overhead, and the campaign
// cache's cold-vs-warm cell latency, then writes everything as JSON so the
// perf trajectory is visible (and diffable) PR-over-PR. The grid phase
// doubles as a determinism check: per-cell FCT and event-trace digests must
// be identical between --jobs 1 and --jobs N; the campaign phase doubles as
// a cache check: the warm pass must be 100% hits.
//
// BENCH_core.json is a *trajectory* (conga-bench-core-v2): a "runs" array,
// one entry per recorded run. --append parses the existing file and appends
// this run instead of overwriting, so the history of a branch accumulates in
// one reviewable artifact. --label names the run (defaults to "dev").
//
// Flags:
//   --out PATH     output file                   [default BENCH_core.json]
//   --jobs N       parallel grid worker count    [default: CONGA_BENCH_JOBS
//                                                 or hardware concurrency]
//   --append       append to --out instead of replacing it
//   --label NAME   run label recorded in the entry
//   --full         longer measurement windows (for by-hand investigations)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "campaign/campaign.hpp"
#include "campaign/fingerprint.hpp"
#include "debug/determinism.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "runtime/parallel_runner.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/experiment.hpp"

using namespace conga;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MicroResult {
  std::string name;
  double ns_per_op = 0;
  std::uint64_t iterations = 0;
};

/// Runs `op(batch)` with growing batches until at least `min_time` seconds
/// of work has been timed, then reports ns/op over the largest batch.
template <typename Op>
MicroResult time_micro(const std::string& name, Op op,
                       double min_time = 0.25) {
  std::uint64_t batch = 1024;
  for (;;) {
    const Clock::time_point start = Clock::now();
    op(batch);
    const double elapsed = seconds_since(start);
    if (elapsed >= min_time || batch >= (1ULL << 30)) {
      MicroResult r;
      r.name = name;
      r.ns_per_op = elapsed * 1e9 / static_cast<double>(batch);
      r.iterations = batch;
      return r;
    }
    const double scale = elapsed > 0 ? min_time / elapsed * 1.4 : 16.0;
    batch = static_cast<std::uint64_t>(static_cast<double>(batch) *
                                       (scale > 16.0 ? 16.0 : scale)) +
            1;
  }
}

std::vector<MicroResult> run_micro_suite() {
  std::vector<MicroResult> out;

  out.push_back(time_micro("scheduler_schedule_dispatch", [](std::uint64_t n) {
    sim::Scheduler sched;
    sim::TimeNs t = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      sched.schedule_at(++t, [] {});
      sched.run_until(t);
    }
  }));

  // TCP timer re-arm pattern: schedule then cancel, never dispatching.
  out.push_back(time_micro("scheduler_schedule_cancel", [](std::uint64_t n) {
    sim::Scheduler sched;
    for (std::uint64_t i = 0; i < n; ++i) {
      const sim::EventId id =
          sched.schedule_after(1000 + static_cast<sim::TimeNs>(i % 64), [] {});
      sched.cancel(id);
    }
  }));

  // Dispatch with a populated queue (sift depth > 0), closer to a busy sim.
  out.push_back(time_micro("scheduler_dispatch_depth1k", [](std::uint64_t n) {
    sim::Scheduler sched;
    sim::TimeNs t = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(1'000'000'000 + i, [] {});  // standing backlog
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      sched.schedule_at(++t, [] {});
      sched.run_until(t);
    }
    sched.run();
  }));

  out.push_back(time_micro("packet_acquire_release", [](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      net::PacketPtr p = net::make_packet();
      (void)p;
    }
  }));

  out.push_back(
      time_micro("end_to_end_packet_forwarding", [](std::uint64_t n) {
        sim::Scheduler sched;
        net::Fabric fabric(sched, net::testbed_baseline(), 1);
        fabric.install_lb(core::conga());
        std::uint16_t port = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
          net::PacketPtr pkt = net::make_packet();
          pkt->flow = net::FlowKey{0, 40, ++port, 7};
          pkt->size_bytes = 1500;
          fabric.host(0).send(std::move(pkt));
          sched.run();
        }
      }));

  return out;
}

struct SingleSimResult {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t flows = 0;
  double events_per_sec = 0;
};

debug::DigestScenario fig09_cell(double load, std::uint64_t seed, bool full) {
  debug::DigestScenario s;
  s.topo = net::testbed_baseline();
  s.topo.hosts_per_leaf = 16;
  s.lb = core::conga();
  s.dist = workload::enterprise();
  s.load = load;
  s.warmup = sim::milliseconds(full ? 10 : 2);
  s.measure = sim::milliseconds(full ? 50 : 10);
  s.fabric_seed = seed;
  s.traffic_seed = seed * 31 + 7;
  // Timing phases run without a sink so events/sec stays comparable with
  // pre-telemetry baselines; the telemetry_overhead phase below measures the
  // masked/full cost explicitly.
  s.telemetry = debug::TelemetryMode::kOff;
  return s;
}

SingleSimResult run_single_sim(bool full) {
  const Clock::time_point start = Clock::now();
  const debug::RunDigests d = debug::run_digest_trial(fig09_cell(0.6, 1, full));
  SingleSimResult r;
  r.wall_s = seconds_since(start);
  r.events = d.events;
  r.flows = d.flows;
  r.events_per_sec =
      r.wall_s > 0 ? static_cast<double>(d.events) / r.wall_s : 0;
  return r;
}

struct GridResult {
  std::size_t cells = 0;
  int jobs = 1;
  double wall_s_jobs1 = 0;
  double wall_s_jobsN = 0;
  double speedup = 0;
  std::uint64_t total_events = 0;
  bool deterministic = false;
};

GridResult run_grid_phase(int jobs, bool full) {
  // The scaled fig09 grid shape: scheme x load, each cell an independent
  // simulation with its own seeds.
  struct Cell {
    bool conga;
    double load;
  };
  std::vector<Cell> cells;
  for (const bool conga : {false, true}) {
    for (const double load : {0.3, 0.6, 0.9}) cells.push_back({conga, load});
  }

  auto run_cell = [&](std::size_t i) {
    debug::DigestScenario s =
        fig09_cell(cells[i].load, 2 + static_cast<std::uint64_t>(i), full);
    if (!cells[i].conga) s.lb = lb::ecmp();
    return debug::run_digest_trial(s);
  };

  GridResult g;
  g.cells = cells.size();
  g.jobs = jobs;

  Clock::time_point start = Clock::now();
  const std::vector<debug::RunDigests> seq =
      runtime::parallel_map<debug::RunDigests>(cells.size(), 1, run_cell);
  g.wall_s_jobs1 = seconds_since(start);

  start = Clock::now();
  const std::vector<debug::RunDigests> par =
      runtime::parallel_map<debug::RunDigests>(cells.size(), jobs, run_cell);
  g.wall_s_jobsN = seconds_since(start);

  g.speedup = g.wall_s_jobsN > 0 ? g.wall_s_jobs1 / g.wall_s_jobsN : 0;
  g.deterministic = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    g.total_events += seq[i].events;
    if (!(seq[i] == par[i])) g.deterministic = false;
  }
  return g;
}

struct TelemetryOverheadResult {
  double eps_off = 0;     ///< events/sec, no sink attached
  double eps_masked = 0;  ///< sink attached, every category masked off
  double eps_full = 0;    ///< sink attached, everything recorded
  bool within_budget = false;  ///< masked >= 95% of off
};

/// Best-of-`trials` events/sec for one scenario (best-of filters scheduler
/// noise, which at these run lengths dwarfs the masked-telemetry cost).
double best_events_per_sec(const debug::DigestScenario& s, int trials) {
  double best = 0;
  for (int i = 0; i < trials; ++i) {
    const Clock::time_point start = Clock::now();
    const debug::RunDigests d = debug::run_digest_trial(s);
    const double wall = seconds_since(start);
    if (wall > 0) {
      best = std::max(best, static_cast<double>(d.events) / wall);
    }
  }
  return best;
}

TelemetryOverheadResult run_telemetry_overhead(bool full) {
  const int trials = full ? 5 : 3;
  debug::DigestScenario s = fig09_cell(0.6, 1, full);
  TelemetryOverheadResult r;
  s.telemetry = debug::TelemetryMode::kOff;
  r.eps_off = best_events_per_sec(s, trials);
  s.telemetry = debug::TelemetryMode::kMasked;
  r.eps_masked = best_events_per_sec(s, trials);
  s.telemetry = debug::TelemetryMode::kFull;
  r.eps_full = best_events_per_sec(s, trials);
  // The gate this PR promises: telemetry compiled in but runtime-disabled
  // must cost < 5% events/sec.
  r.within_budget = r.eps_masked >= 0.95 * r.eps_off;
  return r;
}

struct CampaignCacheResult {
  std::size_t cells = 0;
  double cold_s = 0;          ///< wall-clock of the cache-miss pass
  double warm_s = 0;          ///< wall-clock of the all-hits pass
  double cold_cell_s = 0;
  double warm_cell_s = 0;
  double speedup = 0;
  bool warm_all_hits = false;
  bool reports_identical = false;
};

/// Cold-vs-warm latency of the campaign cache on the builtin smoke
/// campaign, against a throwaway store. The warm pass must be 100% hits and
/// must assemble a byte-identical report — the campaign layer's core
/// promise, re-checked here where the trajectory records what it costs.
CampaignCacheResult run_campaign_cache_phase() {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() /
                        ("conga_perf_store." + std::to_string(::getpid()));
  campaign::ResultStore store(root.string());
  const campaign::CampaignSpec spec = campaign::make_smoke_campaign();
  campaign::RunOptions opts;
  opts.jobs = 1;  // latency per cell, not throughput
  opts.store = &store;

  CampaignCacheResult r;
  campaign::CampaignRun cold;
  campaign::CampaignRun warm;
  std::string err;

  Clock::time_point start = Clock::now();
  const bool cold_ok = campaign::run_campaign(spec, opts, cold, err);
  r.cold_s = seconds_since(start);
  start = Clock::now();
  const bool warm_ok = campaign::run_campaign(spec, opts, warm, err);
  r.warm_s = seconds_since(start);

  std::error_code ec;
  fs::remove_all(root, ec);
  if (!cold_ok || !warm_ok) {
    std::fprintf(stderr, "perf_baseline: campaign phase failed: %s\n",
                 err.c_str());
    return r;
  }
  r.cells = cold.stats.cells;
  if (r.cells > 0) {
    r.cold_cell_s = r.cold_s / static_cast<double>(r.cells);
    r.warm_cell_s = r.warm_s / static_cast<double>(r.cells);
  }
  r.speedup = r.warm_s > 0 ? r.cold_s / r.warm_s : 0;
  r.warm_all_hits = warm.stats.hits == warm.stats.cells &&
                    warm.stats.misses == 0 && cold.stats.hits == 0;
  r.reports_identical =
      campaign::report_json(cold) == campaign::report_json(warm);
  return r;
}

campaign::Json json_of_run(const std::string& label, bool full,
                           const std::vector<MicroResult>& micro,
                           const net::PacketPoolStats& pool,
                           const SingleSimResult& single,
                           const GridResult& grid,
                           const TelemetryOverheadResult& tele,
                           const CampaignCacheResult& cache) {
  using campaign::Json;
  Json run = Json::object();
  run.set("label", Json::string(label));
  run.set("mode", Json::string(full ? "full" : "scaled"));

  Json build = Json::object();
  build.set("compiler", Json::string(__VERSION__));
#ifdef NDEBUG
  build.set("ndebug", Json::boolean(true));
#else
  build.set("ndebug", Json::boolean(false));
#endif
  // The machine's real core count — NOT runtime::default_jobs(), which
  // CONGA_BENCH_JOBS overrides (earlier baselines recorded that override as
  // if it were the hardware, making cross-host comparisons lie).
  build.set("hardware_concurrency",
            Json::uinteger(std::thread::hardware_concurrency()));
  build.set("default_jobs",
            Json::integer(static_cast<std::int64_t>(runtime::default_jobs())));
  build.set("source_digest", Json::string(campaign::source_digest()));
  run.set("build", std::move(build));

  Json micro_obj = Json::object();
  for (const MicroResult& m : micro) {
    Json e = Json::object();
    e.set("ns_per_op", Json::number(m.ns_per_op));
    e.set("ops_per_sec",
          Json::number(m.ns_per_op > 0 ? 1e9 / m.ns_per_op : 0.0));
    e.set("iterations", Json::uinteger(m.iterations));
    micro_obj.set(m.name, std::move(e));
  }
  run.set("micro", std::move(micro_obj));

  Json pool_obj = Json::object();
  pool_obj.set("acquired", Json::uinteger(pool.acquired));
  pool_obj.set("released", Json::uinteger(pool.released));
  pool_obj.set("chunk_allocs", Json::uinteger(pool.chunk_allocs));
  pool_obj.set("allocs_per_million_packets",
               Json::number(pool.acquired > 0
                                ? static_cast<double>(pool.chunk_allocs) *
                                      1e6 / static_cast<double>(pool.acquired)
                                : 0.0));
  run.set("packet_pool", std::move(pool_obj));

  Json single_obj = Json::object();
  single_obj.set(
      "scenario",
      Json::string("fig09 enterprise cell, conga, 60% load (scaled)"));
  single_obj.set("wall_s", Json::number(single.wall_s));
  single_obj.set("events", Json::uinteger(single.events));
  single_obj.set("flows", Json::uinteger(single.flows));
  single_obj.set("events_per_sec", Json::number(single.events_per_sec));
  run.set("single_sim", std::move(single_obj));

  Json grid_obj = Json::object();
  grid_obj.set("scenario",
               Json::string("fig09 grid: {ecmp,conga} x {30,60,90}% (scaled)"));
  grid_obj.set("cells", Json::uinteger(grid.cells));
  grid_obj.set("jobs", Json::integer(grid.jobs));
  grid_obj.set("wall_s_jobs1", Json::number(grid.wall_s_jobs1));
  grid_obj.set("wall_s_jobsN", Json::number(grid.wall_s_jobsN));
  grid_obj.set("speedup", Json::number(grid.speedup));
  grid_obj.set("total_events", Json::uinteger(grid.total_events));
  grid_obj.set("deterministic_across_jobs", Json::boolean(grid.deterministic));
  run.set("grid", std::move(grid_obj));

  Json tele_obj = Json::object();
  tele_obj.set(
      "scenario",
      Json::string("fig09 enterprise cell, conga, 60% load (best-of-N)"));
  tele_obj.set("compiled_in", Json::boolean(telemetry::compiled_in()));
  tele_obj.set("events_per_sec_off", Json::number(tele.eps_off));
  tele_obj.set("events_per_sec_masked", Json::number(tele.eps_masked));
  tele_obj.set("events_per_sec_full", Json::number(tele.eps_full));
  tele_obj.set("overhead_masked_pct",
               Json::number(tele.eps_off > 0
                                ? (1.0 - tele.eps_masked / tele.eps_off) * 100.0
                                : 0.0));
  tele_obj.set("overhead_full_pct",
               Json::number(tele.eps_off > 0
                                ? (1.0 - tele.eps_full / tele.eps_off) * 100.0
                                : 0.0));
  tele_obj.set("masked_within_5pct", Json::boolean(tele.within_budget));
  run.set("telemetry_overhead", std::move(tele_obj));

  Json cache_obj = Json::object();
  cache_obj.set("scenario",
                Json::string("builtin smoke campaign, cold vs warm store"));
  cache_obj.set("cells", Json::uinteger(cache.cells));
  cache_obj.set("cold_s", Json::number(cache.cold_s));
  cache_obj.set("warm_s", Json::number(cache.warm_s));
  cache_obj.set("cold_cell_s", Json::number(cache.cold_cell_s));
  cache_obj.set("warm_cell_s", Json::number(cache.warm_cell_s));
  cache_obj.set("speedup", Json::number(cache.speedup));
  cache_obj.set("warm_all_hits", Json::boolean(cache.warm_all_hits));
  cache_obj.set("reports_identical", Json::boolean(cache.reports_identical));
  run.set("campaign_cache", std::move(cache_obj));

  return run;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out.clear();
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_core.json";
  std::string label = "dev";
  int jobs = runtime::default_jobs();
  bool append = false;
  const bool full = bench::full_mode(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--append") == 0) {
      append = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) jobs = n;
    }
  }

  std::fprintf(stderr, "perf_baseline: micro suite...\n");
  const std::vector<MicroResult> micro = run_micro_suite();
  const net::PacketPoolStats pool = net::packet_pool_stats();

  std::fprintf(stderr, "perf_baseline: single-sim events/sec...\n");
  const SingleSimResult single = run_single_sim(full);

  std::fprintf(stderr, "perf_baseline: grid wall-clock (jobs=1 vs jobs=%d)...\n",
               jobs);
  const GridResult grid = run_grid_phase(jobs, full);

  std::fprintf(stderr, "perf_baseline: telemetry overhead (off/masked/full)...\n");
  const TelemetryOverheadResult tele = run_telemetry_overhead(full);

  std::fprintf(stderr, "perf_baseline: campaign cache cold vs warm...\n");
  const CampaignCacheResult cache = run_campaign_cache_phase();

  campaign::Json doc = campaign::Json::object();
  if (append) {
    std::string existing;
    std::string err;
    campaign::Json parsed;
    if (!read_file(out_path, existing)) {
      std::fprintf(stderr,
                   "perf_baseline: --append but cannot read %s; starting a "
                   "fresh trajectory\n",
                   out_path.c_str());
    } else if (!campaign::Json::parse(existing, parsed, err)) {
      std::fprintf(stderr, "perf_baseline: cannot append to %s: %s\n",
                   out_path.c_str(), err.c_str());
      return 2;
    } else {
      const campaign::Json* schema = parsed.find("schema");
      if (!parsed.is_object() || schema == nullptr || !schema->is_string() ||
          schema->as_string() != "conga-bench-core-v2" ||
          parsed.find("runs") == nullptr ||
          !parsed.find("runs")->is_array()) {
        std::fprintf(stderr,
                     "perf_baseline: %s is not a conga-bench-core-v2 "
                     "trajectory; refusing to append\n",
                     out_path.c_str());
        return 2;
      }
      doc = std::move(parsed);
    }
  }
  if (doc.find("schema") == nullptr) {
    doc.set("schema", campaign::Json::string("conga-bench-core-v2"));
    doc.set("runs", campaign::Json::array());
  }
  // members() gives no mutable access; rebuild the doc with the run
  // appended (trajectories are small).
  campaign::Json runs = campaign::Json::array();
  for (const campaign::Json& r : doc.find("runs")->items()) {
    campaign::Json copy = r;
    runs.push_back(std::move(copy));
  }
  runs.push_back(
      json_of_run(label, full, micro, pool, single, grid, tele, cache));
  campaign::Json out_doc = campaign::Json::object();
  out_doc.set("schema", campaign::Json::string("conga-bench-core-v2"));
  out_doc.set("runs", std::move(runs));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_baseline: cannot open %s\n", out_path.c_str());
    return 2;
  }
  const std::string bytes = out_doc.dump_pretty() + "\n";
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!wrote) {
    std::fprintf(stderr, "perf_baseline: short write to %s\n",
                 out_path.c_str());
    return 2;
  }

  std::fprintf(stderr,
               "perf_baseline: wrote %s (single-sim %.2fM events/s; grid "
               "speedup %.2fx with %d jobs; %s; telemetry masked overhead "
               "%.1f%%%s; campaign warm/cold %.0fx%s)\n",
               out_path.c_str(), single.events_per_sec / 1e6, grid.speedup,
               grid.jobs,
               grid.deterministic ? "deterministic across jobs"
                                  : "NON-DETERMINISTIC",
               tele.eps_off > 0
                   ? (1.0 - tele.eps_masked / tele.eps_off) * 100.0
                   : 0.0,
               tele.within_budget ? "" : " OVER BUDGET",
               cache.speedup,
               cache.warm_all_hits && cache.reports_identical
                   ? ""
                   : " CACHE BROKEN");
  return (grid.deterministic && tele.within_budget && cache.warm_all_hits &&
          cache.reports_identical)
             ? 0
             : 1;
}
