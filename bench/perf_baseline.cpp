// perf_baseline — machine-readable performance baseline (BENCH_core.json).
//
// Times the simulator's hot-path primitives, a single-simulation events/sec
// figure, and the wall-clock of a small scheme x load grid sequentially vs
// under the parallel experiment runner, then writes everything as JSON so
// the perf trajectory is visible (and diffable) PR-over-PR. The grid phase
// doubles as a determinism check: per-cell FCT and event-trace digests must
// be identical between --jobs 1 and --jobs N.
//
// Flags:
//   --out PATH   output file                     [default BENCH_core.json]
//   --jobs N     parallel grid worker count      [default: CONGA_BENCH_JOBS
//                                                 or hardware concurrency]
//   --full       longer measurement windows (for by-hand investigations)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "debug/determinism.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "runtime/parallel_runner.hpp"
#include "telemetry/telemetry.hpp"
#include "tools/bench_json.hpp"
#include "workload/experiment.hpp"

using namespace conga;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MicroResult {
  std::string name;
  double ns_per_op = 0;
  std::uint64_t iterations = 0;
};

/// Runs `op(batch)` with growing batches until at least `min_time` seconds
/// of work has been timed, then reports ns/op over the largest batch.
template <typename Op>
MicroResult time_micro(const std::string& name, Op op,
                       double min_time = 0.25) {
  std::uint64_t batch = 1024;
  for (;;) {
    const Clock::time_point start = Clock::now();
    op(batch);
    const double elapsed = seconds_since(start);
    if (elapsed >= min_time || batch >= (1ULL << 30)) {
      MicroResult r;
      r.name = name;
      r.ns_per_op = elapsed * 1e9 / static_cast<double>(batch);
      r.iterations = batch;
      return r;
    }
    const double scale = elapsed > 0 ? min_time / elapsed * 1.4 : 16.0;
    batch = static_cast<std::uint64_t>(static_cast<double>(batch) *
                                       (scale > 16.0 ? 16.0 : scale)) +
            1;
  }
}

std::vector<MicroResult> run_micro_suite() {
  std::vector<MicroResult> out;

  out.push_back(time_micro("scheduler_schedule_dispatch", [](std::uint64_t n) {
    sim::Scheduler sched;
    sim::TimeNs t = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      sched.schedule_at(++t, [] {});
      sched.run_until(t);
    }
  }));

  // TCP timer re-arm pattern: schedule then cancel, never dispatching.
  out.push_back(time_micro("scheduler_schedule_cancel", [](std::uint64_t n) {
    sim::Scheduler sched;
    for (std::uint64_t i = 0; i < n; ++i) {
      const sim::EventId id =
          sched.schedule_after(1000 + static_cast<sim::TimeNs>(i % 64), [] {});
      sched.cancel(id);
    }
  }));

  // Dispatch with a populated queue (sift depth > 0), closer to a busy sim.
  out.push_back(time_micro("scheduler_dispatch_depth1k", [](std::uint64_t n) {
    sim::Scheduler sched;
    sim::TimeNs t = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(1'000'000'000 + i, [] {});  // standing backlog
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      sched.schedule_at(++t, [] {});
      sched.run_until(t);
    }
    sched.run();
  }));

  out.push_back(time_micro("packet_acquire_release", [](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      net::PacketPtr p = net::make_packet();
      (void)p;
    }
  }));

  out.push_back(
      time_micro("end_to_end_packet_forwarding", [](std::uint64_t n) {
        sim::Scheduler sched;
        net::Fabric fabric(sched, net::testbed_baseline(), 1);
        fabric.install_lb(core::conga());
        std::uint16_t port = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
          net::PacketPtr pkt = net::make_packet();
          pkt->flow = net::FlowKey{0, 40, ++port, 7};
          pkt->size_bytes = 1500;
          fabric.host(0).send(std::move(pkt));
          sched.run();
        }
      }));

  return out;
}

struct SingleSimResult {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t flows = 0;
  double events_per_sec = 0;
};

debug::DigestScenario fig09_cell(double load, std::uint64_t seed, bool full) {
  debug::DigestScenario s;
  s.topo = net::testbed_baseline();
  s.topo.hosts_per_leaf = 16;
  s.lb = core::conga();
  s.dist = workload::enterprise();
  s.load = load;
  s.warmup = sim::milliseconds(full ? 10 : 2);
  s.measure = sim::milliseconds(full ? 50 : 10);
  s.fabric_seed = seed;
  s.traffic_seed = seed * 31 + 7;
  // Timing phases run without a sink so events/sec stays comparable with
  // pre-telemetry baselines; the telemetry_overhead phase below measures the
  // masked/full cost explicitly.
  s.telemetry = debug::TelemetryMode::kOff;
  return s;
}

SingleSimResult run_single_sim(bool full) {
  const Clock::time_point start = Clock::now();
  const debug::RunDigests d = debug::run_digest_trial(fig09_cell(0.6, 1, full));
  SingleSimResult r;
  r.wall_s = seconds_since(start);
  r.events = d.events;
  r.flows = d.flows;
  r.events_per_sec =
      r.wall_s > 0 ? static_cast<double>(d.events) / r.wall_s : 0;
  return r;
}

struct GridResult {
  std::size_t cells = 0;
  int jobs = 1;
  double wall_s_jobs1 = 0;
  double wall_s_jobsN = 0;
  double speedup = 0;
  std::uint64_t total_events = 0;
  bool deterministic = false;
};

GridResult run_grid_phase(int jobs, bool full) {
  // The scaled fig09 grid shape: scheme x load, each cell an independent
  // simulation with its own seeds.
  struct Cell {
    bool conga;
    double load;
  };
  std::vector<Cell> cells;
  for (const bool conga : {false, true}) {
    for (const double load : {0.3, 0.6, 0.9}) cells.push_back({conga, load});
  }

  auto run_cell = [&](std::size_t i) {
    debug::DigestScenario s =
        fig09_cell(cells[i].load, 2 + static_cast<std::uint64_t>(i), full);
    if (!cells[i].conga) s.lb = lb::ecmp();
    return debug::run_digest_trial(s);
  };

  GridResult g;
  g.cells = cells.size();
  g.jobs = jobs;

  Clock::time_point start = Clock::now();
  const std::vector<debug::RunDigests> seq =
      runtime::parallel_map<debug::RunDigests>(cells.size(), 1, run_cell);
  g.wall_s_jobs1 = seconds_since(start);

  start = Clock::now();
  const std::vector<debug::RunDigests> par =
      runtime::parallel_map<debug::RunDigests>(cells.size(), jobs, run_cell);
  g.wall_s_jobsN = seconds_since(start);

  g.speedup = g.wall_s_jobsN > 0 ? g.wall_s_jobs1 / g.wall_s_jobsN : 0;
  g.deterministic = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    g.total_events += seq[i].events;
    if (!(seq[i] == par[i])) g.deterministic = false;
  }
  return g;
}

struct TelemetryOverheadResult {
  double eps_off = 0;     ///< events/sec, no sink attached
  double eps_masked = 0;  ///< sink attached, every category masked off
  double eps_full = 0;    ///< sink attached, everything recorded
  bool within_budget = false;  ///< masked >= 95% of off
};

/// Best-of-`trials` events/sec for one scenario (best-of filters scheduler
/// noise, which at these run lengths dwarfs the masked-telemetry cost).
double best_events_per_sec(const debug::DigestScenario& s, int trials) {
  double best = 0;
  for (int i = 0; i < trials; ++i) {
    const Clock::time_point start = Clock::now();
    const debug::RunDigests d = debug::run_digest_trial(s);
    const double wall = seconds_since(start);
    if (wall > 0) {
      best = std::max(best, static_cast<double>(d.events) / wall);
    }
  }
  return best;
}

TelemetryOverheadResult run_telemetry_overhead(bool full) {
  const int trials = full ? 5 : 3;
  debug::DigestScenario s = fig09_cell(0.6, 1, full);
  TelemetryOverheadResult r;
  s.telemetry = debug::TelemetryMode::kOff;
  r.eps_off = best_events_per_sec(s, trials);
  s.telemetry = debug::TelemetryMode::kMasked;
  r.eps_masked = best_events_per_sec(s, trials);
  s.telemetry = debug::TelemetryMode::kFull;
  r.eps_full = best_events_per_sec(s, trials);
  // The gate this PR promises: telemetry compiled in but runtime-disabled
  // must cost < 5% events/sec.
  r.within_budget = r.eps_masked >= 0.95 * r.eps_off;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_core.json";
  int jobs = runtime::default_jobs();
  const bool full = bench::full_mode(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) jobs = n;
    }
  }

  std::fprintf(stderr, "perf_baseline: micro suite...\n");
  const std::vector<MicroResult> micro = run_micro_suite();
  const net::PacketPoolStats pool = net::packet_pool_stats();

  std::fprintf(stderr, "perf_baseline: single-sim events/sec...\n");
  const SingleSimResult single = run_single_sim(full);

  std::fprintf(stderr, "perf_baseline: grid wall-clock (jobs=1 vs jobs=%d)...\n",
               jobs);
  const GridResult grid = run_grid_phase(jobs, full);

  std::fprintf(stderr, "perf_baseline: telemetry overhead (off/masked/full)...\n");
  const TelemetryOverheadResult tele = run_telemetry_overhead(full);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_baseline: cannot open %s\n", out_path.c_str());
    return 2;
  }
  tools::JsonWriter w(f);
  w.begin_object();
  w.kv("schema", "conga-bench-core-v1");
  w.key("build");
  w.begin_object();
  w.kv("compiler", __VERSION__);
#ifdef NDEBUG
  w.kv("ndebug", true);
#else
  w.kv("ndebug", false);
#endif
  w.kv("hardware_concurrency",
       static_cast<std::int64_t>(runtime::default_jobs()));
  w.end_object();

  w.key("micro");
  w.begin_object();
  for (const MicroResult& m : micro) {
    w.key(m.name);
    w.begin_object();
    w.kv("ns_per_op", m.ns_per_op);
    w.kv("ops_per_sec", m.ns_per_op > 0 ? 1e9 / m.ns_per_op : 0.0);
    w.kv("iterations", m.iterations);
    w.end_object();
  }
  w.end_object();

  w.key("packet_pool");
  w.begin_object();
  w.kv("acquired", pool.acquired);
  w.kv("released", pool.released);
  w.kv("chunk_allocs", pool.chunk_allocs);
  w.kv("allocs_per_million_packets",
       pool.acquired > 0 ? static_cast<double>(pool.chunk_allocs) * 1e6 /
                               static_cast<double>(pool.acquired)
                         : 0.0);
  w.end_object();

  w.key("single_sim");
  w.begin_object();
  w.kv("scenario", "fig09 enterprise cell, conga, 60% load (scaled)");
  w.kv("wall_s", single.wall_s);
  w.kv("events", single.events);
  w.kv("flows", single.flows);
  w.kv("events_per_sec", single.events_per_sec);
  w.end_object();

  w.key("grid");
  w.begin_object();
  w.kv("scenario", "fig09 grid: {ecmp,conga} x {30,60,90}% (scaled)");
  w.kv("cells", static_cast<std::uint64_t>(grid.cells));
  w.kv("jobs", grid.jobs);
  w.kv("wall_s_jobs1", grid.wall_s_jobs1);
  w.kv("wall_s_jobsN", grid.wall_s_jobsN);
  w.kv("speedup", grid.speedup);
  w.kv("total_events", grid.total_events);
  w.kv("deterministic_across_jobs", grid.deterministic);
  w.end_object();

  w.key("telemetry_overhead");
  w.begin_object();
  w.kv("scenario", "fig09 enterprise cell, conga, 60% load (best-of-N)");
  w.kv("compiled_in", telemetry::compiled_in());
  w.kv("events_per_sec_off", tele.eps_off);
  w.kv("events_per_sec_masked", tele.eps_masked);
  w.kv("events_per_sec_full", tele.eps_full);
  w.kv("overhead_masked_pct",
       tele.eps_off > 0 ? (1.0 - tele.eps_masked / tele.eps_off) * 100.0 : 0.0);
  w.kv("overhead_full_pct",
       tele.eps_off > 0 ? (1.0 - tele.eps_full / tele.eps_off) * 100.0 : 0.0);
  w.kv("masked_within_5pct", tele.within_budget);
  w.end_object();

  w.end_object();
  w.finish();
  std::fclose(f);

  std::fprintf(stderr,
               "perf_baseline: wrote %s (single-sim %.2fM events/s; grid "
               "speedup %.2fx with %d jobs; %s; telemetry masked overhead "
               "%.1f%%%s)\n",
               out_path.c_str(), single.events_per_sec / 1e6, grid.speedup,
               grid.jobs,
               grid.deterministic ? "deterministic across jobs"
                                  : "NON-DETERMINISTIC",
               tele.eps_off > 0
                   ? (1.0 - tele.eps_masked / tele.eps_off) * 100.0
                   : 0.0,
               tele.within_budget ? "" : " OVER BUDGET");
  return (grid.deterministic && tele.within_budget) ? 0 : 1;
}
