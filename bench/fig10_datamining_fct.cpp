// Figure 10: FCT statistics for the data-mining workload (very heavy tail)
// on the baseline topology.
//
// Paper shape: ECMP noticeably worse at high load (the heavy tail makes
// hash collisions costly); CONGA and MPTCP up to ~35% better overall;
// MPTCP still degrades small flows.
#include "bench_util.hpp"
#include "fct_grid.hpp"

using namespace conga;

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  const int jobs = bench::jobs_mode(argc, argv);
  bench::print_header("Fig 10 — data-mining workload FCT (baseline topology)",
                      full, jobs);

  bench::GridConfig g;
  g.topo = net::testbed_baseline();
  if (!full) g.topo.hosts_per_leaf = 16;
  g.dist = workload::data_mining();
  g.loads_pct = full ? std::vector<int>{10, 20, 30, 40, 50, 60, 70, 80, 90}
                     : std::vector<int>{10, 30, 50, 70, 90};
  g.warmup = sim::milliseconds(10);
  // The heavy tail needs a longer window for meaningful flow counts, and a
  // long drain so the multi-MB flows finish (1 GB outliers are censored; the
  // completion table reports how many).
  g.measure = full ? sim::milliseconds(400) : sim::milliseconds(100);
  g.max_drain = full ? sim::seconds(5.0) : sim::seconds(2.0);
  g.tcp.min_rto = sim::milliseconds(10);

  run_and_print_grid(g, jobs);
  return 0;
}
