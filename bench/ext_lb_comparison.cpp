// Competitor load-balancer comparison (extension; companion to Fig 9/11).
//
// Sweeps every registered policy — ECMP, packet spray, local-only flowlets,
// LetFlow, DRILL, Presto, HULA-style probes, CONGA-Flow, CONGA — over the
// enterprise workload at 10–90% load, on the symmetric baseline testbed and
// on an asymmetric variant with one uplink degraded to 10% capacity (the
// Fig 2 regime where congestion-oblivious hashing collapses). Alongside the
// FCT panels it reports what each scheme pays: receiver-side reordering
// (out-of-order segments, worst reorder distance) and probe-plane overhead
// (control packets injected into the fabric).
//
// The sweep runs as a campaign on the content-addressed result store
// (src/campaign/): pass --store DIR and a rerun reuses every cell whose
// spec and build fingerprint are unchanged, so iterating on one policy
// re-simulates only that policy's cells. Without --store it computes
// everything, exactly as before.
//
// The --out report is byte-identical across reruns, --jobs values, and
// cold/warm caches: cells are independent simulations committed in
// canonical grid order, and the file carries no timestamps, host state, or
// cache statistics.
//
// Flags: --full (paper scale), --jobs N, --out FILE (JSON report),
//        --load N (restrict to one load point — the CI smoke lane),
//        --store DIR (incremental reruns via the campaign cache).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "campaign/campaign.hpp"
#include "lb_ext/policies.hpp"
#include "tools/bench_json.hpp"
#include "workload/experiment.hpp"

using namespace conga;

namespace {

constexpr const char* kPolicies[] = {"ecmp",   "spray", "local",
                                     "letflow", "drill", "presto",
                                     "hula",   "conga-flow", "conga"};
constexpr std::size_t kNumPolicies = sizeof(kPolicies) / sizeof(kPolicies[0]);

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  const int jobs = bench::jobs_mode(argc, argv);
  std::string out_path;
  std::string store_dir;
  int only_load = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      only_load = std::atoi(argv[++i]);
      if (only_load <= 0 || only_load > 100) {
        std::fprintf(stderr, "ext_lb_comparison: bad --load %s\n", argv[i]);
        return 2;
      }
    }
  }
  bench::print_header(
      "Extension — competitor LB suite (LetFlow/DRILL/Presto/HULA vs CONGA)",
      full, jobs);

  net::TopologyConfig base = net::testbed_baseline();
  if (!full) base.hosts_per_leaf = 16;  // scaled: 32 hosts total
  net::TopologyConfig degraded = base;
  // One Leaf1<->Spine1 link at 10% capacity: asymmetry that hashing and
  // static weights cannot see but congestion-aware schemes route around.
  degraded.overrides.push_back(
      net::LinkOverride{/*leaf=*/1, /*spine=*/1, /*parallel=*/0,
                        /*rate_factor=*/0.1});

  std::vector<int> loads =
      full ? std::vector<int>{10, 20, 30, 40, 50, 60, 70, 80, 90}
           : std::vector<int>{10, 50, 90};
  if (only_load > 0) loads = {only_load};

  // The sweep as a campaign request. Seeds {1, 7} are run_fct_experiment's
  // defaults, and the grid order (case -> policy -> load) matches
  // expand_campaign's canonical order, so cell values and report layout are
  // unchanged from the pre-campaign version of this bench.
  campaign::CampaignSpec spec;
  spec.name = "ext-lb-comparison";
  spec.policies.assign(kPolicies, kPolicies + kNumPolicies);
  spec.loads_pct = loads;
  spec.cases = {{"symmetric", base}, {"degraded", degraded}};
  spec.min_rto_ns = sim::milliseconds(10);  // DC-granularity timers (Fig 9)
  spec.warmup_ns = sim::milliseconds(10);
  spec.measure_ns = full ? sim::milliseconds(200) : sim::milliseconds(50);
  spec.max_drain_ns = full ? sim::seconds(3.0) : sim::seconds(1.5);

  campaign::ResultStore store(store_dir);
  campaign::RunOptions opts;
  opts.jobs = jobs;
  opts.store = store_dir.empty() ? nullptr : &store;
  opts.verbose = true;

  campaign::CampaignRun run;
  std::string err;
  if (!campaign::run_campaign(spec, opts, run, err)) {
    std::fprintf(stderr, "ext_lb_comparison: %s\n", err.c_str());
    return 2;
  }
  if (opts.store != nullptr) {
    std::fprintf(stderr, "ext_lb_comparison: %s\n",
                 campaign::stats_json(run.stats).dump().c_str());
  }

  const std::size_t n_loads = loads.size();
  const std::size_t cells_per_case = kNumPolicies * n_loads;
  auto cell = [&](std::size_t c, std::size_t p,
                  std::size_t l) -> const workload::ExperimentResult& {
    return run.results[c * cells_per_case + p * n_loads + l];
  };

  for (std::size_t c = 0; c < spec.cases.size(); ++c) {
    std::printf("\n=== case: %s ===\n", spec.cases[c].name.c_str());

    std::printf("\n(a) overall average FCT, normalised to optimal\n");
    std::printf("%-12s", "load(%)");
    for (int load : loads) std::printf("%10d", load);
    std::printf("\n");
    for (std::size_t p = 0; p < kNumPolicies; ++p) {
      std::printf("%-12s", kPolicies[p]);
      for (std::size_t l = 0; l < n_loads; ++l) {
        std::printf("%10.2f", cell(c, p, l).avg_norm_fct);
      }
      std::printf("\n");
    }

    std::printf("\n(b) reordering ledger at the highest load "
                "(segments / worst distance / flows hit)\n");
    for (std::size_t p = 0; p < kNumPolicies; ++p) {
      const workload::ExperimentResult& r = cell(c, p, n_loads - 1);
      std::printf("%-12s%12" PRIu64 "%12" PRIu64 "%12" PRIu64 "\n",
                  kPolicies[p], r.reorder_segments, r.reorder_max_distance,
                  r.reordered_flows);
    }

    std::printf("\n(c) probe-plane overhead at the highest load "
                "(probes injected / consumed)\n");
    for (std::size_t p = 0; p < kNumPolicies; ++p) {
      const workload::ExperimentResult& r = cell(c, p, n_loads - 1);
      std::printf("%-12s%12" PRIu64 "%12" PRIu64 "\n", kPolicies[p],
                  r.probes_sent, r.probes_received);
    }
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ext_lb_comparison: cannot open %s\n",
                   out_path.c_str());
      return 2;
    }
    tools::JsonWriter w(f);
    w.begin_object();
    w.kv("schema", "conga-ext-lb-comparison-v1");
    w.kv("mode", full ? "full" : "scaled");
    w.key("loads_pct");
    w.begin_array();
    for (int load : loads) w.value(load);
    w.end_array();
    w.key("policies");
    w.begin_array();
    for (std::size_t p = 0; p < kNumPolicies; ++p) w.value(kPolicies[p]);
    w.end_array();
    w.key("cases");
    w.begin_array();
    for (std::size_t c = 0; c < spec.cases.size(); ++c) {
      w.begin_object();
      w.kv("name", spec.cases[c].name.c_str());
      w.key("cells");
      w.begin_array();
      for (std::size_t p = 0; p < kNumPolicies; ++p) {
        for (std::size_t l = 0; l < n_loads; ++l) {
          const workload::ExperimentResult& r = cell(c, p, l);
          w.begin_object();
          w.kv("policy", kPolicies[p]);
          w.kv("load_pct", loads[l]);
          w.kv("avg_norm_fct", r.avg_norm_fct);
          w.kv("median_norm_fct", r.median_norm_fct);
          w.kv("p99_norm_fct", r.p99_norm_fct);
          w.kv("avg_fct_small", r.avg_fct_small);
          w.kv("avg_fct_large", r.avg_fct_large);
          w.kv("flows", static_cast<std::uint64_t>(r.flows));
          w.kv("completed_fraction", r.completed_fraction);
          w.kv("fct_digest", hex64(r.fct_digest));
          w.kv("reorder_segments", r.reorder_segments);
          w.kv("reorder_max_distance", r.reorder_max_distance);
          w.kv("reordered_flows", r.reordered_flows);
          w.kv("probes_sent", r.probes_sent);
          w.kv("probes_received", r.probes_received);
          w.end_object();
        }
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish();
    std::fclose(f);
    std::fprintf(stderr, "ext_lb_comparison: wrote %s\n", out_path.c_str());
  }
  return 0;
}
