// Extension: reconvergence after a runtime link failure.
//
// The paper's failure experiments (Figs 7b, 11, 14, 16) use statically
// failed links; its motivation (§1, Gill et al.) is that failures are
// frequent and *disruptive while they last*. This bench measures the
// disruption window: a 40G uplink dies mid-run with a routing-detection
// delay of 1 ms, and we plot delivered throughput into Leaf 1 in 2 ms
// buckets for ECMP vs CONGA.
//
// Expected shape: both schemes blackhole flows during the detection window;
// after withdrawal, CONGA's flowlets immediately re-spread to keep the
// offered load (its congestion tables already know the surviving paths),
// while ECMP's surviving-uplink hash rebalance is congestion-blind and
// settles lower when the remaining capacity is asymmetric.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "telemetry/probes.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

std::vector<double> run(const net::Fabric::LbFactory& lb, bool full) {
  net::TopologyConfig topo = net::testbed_baseline();
  topo.hosts_per_leaf = full ? 32 : 16;

  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 31);
  fabric.install_lb(lb);
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(5);
  workload::TrafficGenConfig gc;
  gc.load = 0.65;
  gc.stop = sim::milliseconds(100);
  workload::TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(t),
                                 workload::fixed_size(300'000), gc);
  gen.start();

  // One of Leaf1's uplinks to Spine1 dies at t=40ms; detected at 41ms.
  sched.schedule_at(sim::milliseconds(40), [&] {
    fabric.fail_fabric_link(1, 1, 0, sim::milliseconds(1));
  });

  // The fabric's leaf1/rx_host_bytes probe sums bytes_received() over
  // Leaf 1's hosts; the counter deltas at 2 ms intervals are exactly the
  // throughput buckets the bench used to accumulate by hand.
  telemetry::TraceSink sink;
  fabric.attach_telemetry(&sink);
  sink.set_category_mask(telemetry::category_bit(telemetry::Category::kProbe));
  telemetry::PeriodicSampler rx(sched, sink, sim::milliseconds(2), 0, gc.stop,
                                {sink.probes().find("leaf1/rx_host_bytes")});
  sched.run_until(gc.stop);

  std::vector<double> gbps;
  for (const double delta_bytes : rx.series(0)) {
    gbps.push_back(delta_bytes * 8.0 / 2e-3 / 1e9);
  }
  return gbps;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header(
      "Extension — throughput timeline across a runtime link failure", full);

  const auto ecmp = run(lb::ecmp(), full);
  const auto conga = run(core::conga(), full);

  std::printf("delivered Gbps into Leaf 1 (2 ms buckets; link dies at 40 ms, "
              "detected at 41 ms)\n");
  std::printf("%6s%10s%10s\n", "t(ms)", "ECMP", "CONGA");
  for (std::size_t i = 0; i < ecmp.size(); ++i) {
    std::printf("%6zu%10.1f%10.1f\n", 2 * (i + 1), ecmp[i], conga[i]);
  }

  auto avg = [](const std::vector<double>& v, std::size_t from,
                std::size_t to) {
    double s = 0;
    for (std::size_t i = from; i < to; ++i) s += v[i];
    return s / static_cast<double>(to - from);
  };
  // Buckets: 2ms each; pre-failure = 20..40ms (idx 9..19), post = 60..100ms.
  std::printf("\n%-8s pre-failure avg: %5.1f G   post-failure avg: %5.1f G\n",
              "ECMP", avg(ecmp, 9, 19), avg(ecmp, 29, 49));
  std::printf("%-8s pre-failure avg: %5.1f G   post-failure avg: %5.1f G\n",
              "CONGA", avg(conga, 9, 19), avg(conga, 29, 49));
  return 0;
}
