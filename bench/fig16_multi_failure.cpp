// Figure 16: multiple link failures in a larger fabric — 6 leaves, 4
// spines, 3 parallel links per leaf-spine pair, 9 randomly chosen failed
// links; web-search workload at 75% load (scaled runs need the extra pressure to expose the downlink hotspots the paper sees at 60%). The paper plots the average queue
// length at every fabric port for ECMP vs CONGA.
//
// Paper shape: CONGA balances dramatically better; the improvement is
// largest at the (remote) spine downlinks adjacent to failures, which ECMP
// overloads because it spreads leaf uplink load evenly regardless.
#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "runtime/parallel_runner.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

net::TopologyConfig fig16_topo(bool full) {
  net::TopologyConfig topo;
  topo.num_leaves = 6;
  topo.num_spines = 4;
  topo.links_per_spine = 3;  // 12 uplinks per leaf, the LBTag maximum
  topo.hosts_per_leaf = full ? 48 : 12;
  // Preserve the paper's 1:1 subscription (48 x 10G vs 12 x 40G) at scale:
  // 12 x 10G hosts vs 12 x 10G fabric links.
  topo.host_link_bps = 10e9;
  topo.fabric_link_bps = full ? 40e9 : 10e9;

  // 9 random failed links (fixed seed so ECMP and CONGA see the same
  // asymmetry).
  sim::Rng rng(99);
  int failed = 0;
  while (failed < 9) {
    net::LinkOverride o;
    o.leaf = static_cast<int>(rng.index(6));
    o.spine = static_cast<int>(rng.index(4));
    o.parallel = static_cast<int>(rng.index(3));
    o.rate_factor = 0.0;
    bool dup = false;
    for (const auto& e : topo.overrides) {
      if (e.leaf == o.leaf && e.spine == o.spine && e.parallel == o.parallel) {
        dup = true;
      }
    }
    if (dup) continue;
    topo.overrides.push_back(o);
    ++failed;
  }
  return topo;
}

struct PortLoads {
  std::vector<double> uplink_q;    // avg queue bytes, leaf->spine
  std::vector<double> downlink_q;  // avg queue bytes, spine->leaf
  std::vector<std::string> up_names, down_names;
};

PortLoads run(const net::Fabric::LbFactory& lb, bool full) {
  const net::TopologyConfig topo = fig16_topo(full);
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 5);
  fabric.install_lb(lb);
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  workload::TrafficGenConfig gc;
  gc.load = 0.75;
  gc.stop = full ? sim::milliseconds(200) : sim::milliseconds(60);
  workload::TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(t),
                                 workload::web_search(), gc);
  gen.start();
  sched.run_until(gc.stop);

  PortLoads out;
  for (const net::Link* l : fabric.fabric_links()) {
    const double avg = l->queue().time_avg_bytes(sched.now());
    if (l->name().rfind("up:", 0) == 0) {
      out.uplink_q.push_back(avg);
      out.up_names.push_back(l->name());
    } else {
      out.downlink_q.push_back(avg);
      out.down_names.push_back(l->name());
    }
  }
  return out;
}

void summarize(const char* what, std::vector<double> ecmp,
               std::vector<double> conga) {
  auto stats = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    const double max = v.back();
    const double p90 = v[static_cast<std::size_t>(0.9 * (v.size() - 1))];
    int hot = 0;
    for (double x : v) {
      if (x > 500e3) ++hot;  // > 500 KB standing queue = a hotspot
    }
    return std::tuple<double, double, int>(max, p90, hot);
  };
  const auto [e_max, e_p90, e_hot] = stats(ecmp);
  const auto [c_max, c_p90, c_hot] = stats(conga);
  std::printf("%-18s max: ECMP %7.0f KB vs CONGA %7.0f KB (%.1fx)   "
              "p90: %7.0f vs %7.0f KB   hot ports(>500KB): %d vs %d\n",
              what, e_max / 1e3, c_max / 1e3, (e_max + 1) / (c_max + 1),
              e_p90 / 1e3, c_p90 / 1e3, e_hot, c_hot);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  const int jobs = bench::jobs_mode(argc, argv);
  bench::print_header(
      "Fig 16 — multi-failure fabric (6 leaves x 4 spines x 3 links, 9 down)",
      full, jobs);

  // The two schemes are independent whole-fabric simulations; run them
  // concurrently (results committed by index).
  const std::vector<PortLoads> runs = runtime::parallel_map<PortLoads>(
      2, jobs,
      [&](std::size_t i) { return run(i == 0 ? lb::ecmp() : core::conga(), full); });
  const PortLoads& ecmp = runs[0];
  const PortLoads& conga = runs[1];

  std::printf("\nper-port time-averaged queue (KB): leaf uplinks\n");
  std::printf("%-14s%12s%12s\n", "link", "ECMP", "CONGA");
  for (std::size_t i = 0; i < ecmp.uplink_q.size(); ++i) {
    std::printf("%-14s%12.1f%12.1f\n", ecmp.up_names[i].c_str(),
                ecmp.uplink_q[i] / 1e3, conga.uplink_q[i] / 1e3);
  }
  std::printf("\nper-port time-averaged queue (KB): spine downlinks\n");
  std::printf("%-14s%12s%12s\n", "link", "ECMP", "CONGA");
  for (std::size_t i = 0; i < ecmp.downlink_q.size(); ++i) {
    std::printf("%-14s%12.1f%12.1f\n", ecmp.down_names[i].c_str(),
                ecmp.downlink_q[i] / 1e3, conga.downlink_q[i] / 1e3);
  }

  std::printf("\nsummary\n");
  summarize("leaf uplinks", ecmp.uplink_q, conga.uplink_q);
  summarize("spine downlinks", ecmp.downlink_q, conga.downlink_q);
  std::printf("\npaper: queues near failed links ~10x larger under ECMP; the "
              "gap is biggest at spine downlinks.\n");
  return 0;
}
