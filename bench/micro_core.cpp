// Microbenchmarks of CONGA's per-packet primitives (the operations the §4
// ASIC implements in ~2.4M gates) and the simulator's own hot paths.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/conga_lb.hpp"
#include "core/congestion_tables.hpp"
#include "core/dre.hpp"
#include "core/flowlet_table.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "sim/scheduler.hpp"

using namespace conga;

namespace {

void BM_DreAddAndQuantize(benchmark::State& state) {
  core::Dre dre(core::DreConfig{}, 40e9);
  sim::TimeNs t = 0;
  for (auto _ : state) {
    dre.add(1500, t);
    benchmark::DoNotOptimize(dre.quantized(t));
    t += 300;
  }
}
BENCHMARK(BM_DreAddAndQuantize);

void BM_FlowletLookupHit(benchmark::State& state) {
  core::FlowletTable table(core::FlowletTableConfig{});
  net::FlowKey key{1, 2, 3, 4};
  table.install(key, 5, 0);
  sim::TimeNs t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(key, t));
    ++t;  // refreshes liveness; stays a hit
  }
}
BENCHMARK(BM_FlowletLookupHit);

void BM_FlowletInstall(benchmark::State& state) {
  core::FlowletTable table(core::FlowletTableConfig{});
  std::uint16_t port = 0;
  for (auto _ : state) {
    net::FlowKey key{1, 2, ++port, 4};
    table.install(key, port % 4, 0);
  }
}
BENCHMARK(BM_FlowletInstall);

void BM_CongestionTableUpdate(benchmark::State& state) {
  core::CongestionTableConfig cfg;
  cfg.num_leaves = 8;
  cfg.num_uplinks = 12;
  core::CongestionFromLeafTable table(cfg);
  int i = 0;
  for (auto _ : state) {
    table.update(i % 8, i % 12, static_cast<std::uint8_t>(i % 8), i);
    ++i;
  }
}
BENCHMARK(BM_CongestionTableUpdate);

void BM_FeedbackPick(benchmark::State& state) {
  core::CongestionTableConfig cfg;
  cfg.num_leaves = 8;
  cfg.num_uplinks = 12;
  core::CongestionFromLeafTable table(cfg);
  for (int l = 0; l < 8; ++l) {
    for (int u = 0; u < 12; ++u) {
      table.update(l, u, static_cast<std::uint8_t>(u), 0);
    }
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.pick_feedback(i % 8, i));
    ++i;
  }
}
BENCHMARK(BM_FeedbackPick);

struct SelectFixture {
  sim::Scheduler sched;
  net::Fabric fabric;
  SelectFixture() : fabric(sched, net::testbed_baseline(), 1) {}
};

void BM_EcmpSelect(benchmark::State& state) {
  SelectFixture fx;
  fx.fabric.install_lb(lb::ecmp());
  auto* balancer = fx.fabric.leaf(0).load_balancer();
  net::Packet pkt;
  pkt.flow = net::FlowKey{0, 40, 1, 2};
  std::uint16_t p = 0;
  for (auto _ : state) {
    pkt.flow.src_port = ++p;
    benchmark::DoNotOptimize(balancer->select_uplink(pkt, 1, 0));
  }
}
BENCHMARK(BM_EcmpSelect);

void BM_CongaSelectNewFlowlet(benchmark::State& state) {
  SelectFixture fx;
  fx.fabric.install_lb(core::conga());
  auto* balancer = fx.fabric.leaf(0).load_balancer();
  net::Packet pkt;
  pkt.flow = net::FlowKey{0, 40, 1, 2};
  std::uint16_t p = 0;
  for (auto _ : state) {
    pkt.flow.src_port = ++p;  // new 5-tuple (almost) every call
    benchmark::DoNotOptimize(balancer->select_uplink(pkt, 1, 0));
  }
}
BENCHMARK(BM_CongaSelectNewFlowlet);

void BM_CongaSelectCached(benchmark::State& state) {
  SelectFixture fx;
  fx.fabric.install_lb(core::conga());
  auto* balancer = fx.fabric.leaf(0).load_balancer();
  net::Packet pkt;
  pkt.flow = net::FlowKey{0, 40, 1, 2};
  sim::TimeNs t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer->select_uplink(pkt, 1, t));
    t += 100;  // well within the flowlet gap
  }
}
BENCHMARK(BM_CongaSelectCached);

void BM_SchedulerScheduleDispatch(benchmark::State& state) {
  sim::Scheduler sched;
  sim::TimeNs t = 0;
  for (auto _ : state) {
    sched.schedule_at(++t, [] {});
    sched.run_until(t);
  }
}
BENCHMARK(BM_SchedulerScheduleDispatch);

// The trace hook must cost one predictable branch when unset; this is the
// hook-enabled companion to BM_SchedulerScheduleDispatch, so the delta is
// the whole observability overhead (satellite: zero-cost when disabled).
void BM_SchedulerScheduleDispatchTraced(benchmark::State& state) {
  sim::Scheduler sched;
  std::uint64_t sink = 0;
  sched.set_trace_hook(
      [&sink](sim::TimeNs t, sim::EventId id) { sink ^= t ^ id; });
  sim::TimeNs t = 0;
  for (auto _ : state) {
    sched.schedule_at(++t, [] {});
    sched.run_until(t);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SchedulerScheduleDispatchTraced);

// TCP-timer re-arm pattern: schedule then cancel without dispatching. With
// the generation-checked slots this is two O(1) slot ops plus one lazy heap
// node; with the old unordered_set lazy cancel it was a rehashing insert on
// every cancel.
void BM_ScheduleCancelChurn(benchmark::State& state) {
  sim::Scheduler sched;
  sim::TimeNs t = 0;
  for (auto _ : state) {
    const sim::EventId id = sched.schedule_at(++t + 1000, [] {});
    sched.cancel(id);
    benchmark::DoNotOptimize(id);
  }
  sched.run();
}
BENCHMARK(BM_ScheduleCancelChurn);

// Dispatch against a standing backlog so sift operations have real depth.
void BM_SchedulerDispatchDepth1k(benchmark::State& state) {
  sim::Scheduler sched;
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_at(1'000'000'000 + i, [] {});
  }
  sim::TimeNs t = 0;
  for (auto _ : state) {
    sched.schedule_at(++t, [] {});
    sched.run_until(t);
  }
}
BENCHMARK(BM_SchedulerDispatchDepth1k);

// Steady-state packet cost: each iteration acquires from and releases to
// the thread-local pool — no allocator traffic after the first chunk.
void BM_PacketAlloc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::make_packet());
  }
  state.counters["pool_chunk_allocs"] = static_cast<double>(
      net::packet_pool_stats().chunk_allocs);
}
BENCHMARK(BM_PacketAlloc);

// Pool behaviour with a realistic number of packets in flight.
void BM_PacketAllocInFlight(benchmark::State& state) {
  std::vector<net::PacketPtr> in_flight;
  in_flight.reserve(64);
  std::size_t next = 0;
  for (int i = 0; i < 64; ++i) in_flight.push_back(net::make_packet());
  for (auto _ : state) {
    in_flight[next] = net::make_packet();  // releases the old, acquires new
    next = (next + 1) % in_flight.size();
  }
}
BENCHMARK(BM_PacketAllocInFlight);

void BM_EndToEndPacketForwarding(benchmark::State& state) {
  // Whole-fabric cost of one inter-leaf packet (encap, CONGA decision,
  // 4 link hops, feedback harvest, decap, delivery).
  sim::Scheduler sched;
  net::Fabric fabric(sched, net::testbed_baseline(), 1);
  fabric.install_lb(core::conga());
  std::uint16_t p = 0;
  for (auto _ : state) {
    net::PacketPtr pkt = net::make_packet();
    pkt->flow = net::FlowKey{0, 40, ++p, 7};
    pkt->size_bytes = 1500;
    fabric.host(0).send(std::move(pkt));
    sched.run();
  }
}
BENCHMARK(BM_EndToEndPacketForwarding);

}  // namespace

BENCHMARK_MAIN();
