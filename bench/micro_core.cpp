// Microbenchmarks of CONGA's per-packet primitives (the operations the §4
// ASIC implements in ~2.4M gates) and the simulator's own hot paths.
#include <benchmark/benchmark.h>

#include "core/conga_lb.hpp"
#include "core/congestion_tables.hpp"
#include "core/dre.hpp"
#include "core/flowlet_table.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "sim/scheduler.hpp"

using namespace conga;

namespace {

void BM_DreAddAndQuantize(benchmark::State& state) {
  core::Dre dre(core::DreConfig{}, 40e9);
  sim::TimeNs t = 0;
  for (auto _ : state) {
    dre.add(1500, t);
    benchmark::DoNotOptimize(dre.quantized(t));
    t += 300;
  }
}
BENCHMARK(BM_DreAddAndQuantize);

void BM_FlowletLookupHit(benchmark::State& state) {
  core::FlowletTable table(core::FlowletTableConfig{});
  net::FlowKey key{1, 2, 3, 4};
  table.install(key, 5, 0);
  sim::TimeNs t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(key, t));
    ++t;  // refreshes liveness; stays a hit
  }
}
BENCHMARK(BM_FlowletLookupHit);

void BM_FlowletInstall(benchmark::State& state) {
  core::FlowletTable table(core::FlowletTableConfig{});
  std::uint16_t port = 0;
  for (auto _ : state) {
    net::FlowKey key{1, 2, ++port, 4};
    table.install(key, port % 4, 0);
  }
}
BENCHMARK(BM_FlowletInstall);

void BM_CongestionTableUpdate(benchmark::State& state) {
  core::CongestionTableConfig cfg;
  cfg.num_leaves = 8;
  cfg.num_uplinks = 12;
  core::CongestionFromLeafTable table(cfg);
  int i = 0;
  for (auto _ : state) {
    table.update(i % 8, i % 12, static_cast<std::uint8_t>(i % 8), i);
    ++i;
  }
}
BENCHMARK(BM_CongestionTableUpdate);

void BM_FeedbackPick(benchmark::State& state) {
  core::CongestionTableConfig cfg;
  cfg.num_leaves = 8;
  cfg.num_uplinks = 12;
  core::CongestionFromLeafTable table(cfg);
  for (int l = 0; l < 8; ++l) {
    for (int u = 0; u < 12; ++u) {
      table.update(l, u, static_cast<std::uint8_t>(u), 0);
    }
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.pick_feedback(i % 8, i));
    ++i;
  }
}
BENCHMARK(BM_FeedbackPick);

struct SelectFixture {
  sim::Scheduler sched;
  net::Fabric fabric;
  SelectFixture() : fabric(sched, net::testbed_baseline(), 1) {}
};

void BM_EcmpSelect(benchmark::State& state) {
  SelectFixture fx;
  fx.fabric.install_lb(lb::ecmp());
  auto* balancer = fx.fabric.leaf(0).load_balancer();
  net::Packet pkt;
  pkt.flow = net::FlowKey{0, 40, 1, 2};
  std::uint16_t p = 0;
  for (auto _ : state) {
    pkt.flow.src_port = ++p;
    benchmark::DoNotOptimize(balancer->select_uplink(pkt, 1, 0));
  }
}
BENCHMARK(BM_EcmpSelect);

void BM_CongaSelectNewFlowlet(benchmark::State& state) {
  SelectFixture fx;
  fx.fabric.install_lb(core::conga());
  auto* balancer = fx.fabric.leaf(0).load_balancer();
  net::Packet pkt;
  pkt.flow = net::FlowKey{0, 40, 1, 2};
  std::uint16_t p = 0;
  for (auto _ : state) {
    pkt.flow.src_port = ++p;  // new 5-tuple (almost) every call
    benchmark::DoNotOptimize(balancer->select_uplink(pkt, 1, 0));
  }
}
BENCHMARK(BM_CongaSelectNewFlowlet);

void BM_CongaSelectCached(benchmark::State& state) {
  SelectFixture fx;
  fx.fabric.install_lb(core::conga());
  auto* balancer = fx.fabric.leaf(0).load_balancer();
  net::Packet pkt;
  pkt.flow = net::FlowKey{0, 40, 1, 2};
  sim::TimeNs t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer->select_uplink(pkt, 1, t));
    t += 100;  // well within the flowlet gap
  }
}
BENCHMARK(BM_CongaSelectCached);

void BM_SchedulerScheduleDispatch(benchmark::State& state) {
  sim::Scheduler sched;
  sim::TimeNs t = 0;
  for (auto _ : state) {
    sched.schedule_at(++t, [] {});
    sched.run_until(t);
  }
}
BENCHMARK(BM_SchedulerScheduleDispatch);

void BM_PacketAlloc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::make_packet());
  }
}
BENCHMARK(BM_PacketAlloc);

void BM_EndToEndPacketForwarding(benchmark::State& state) {
  // Whole-fabric cost of one inter-leaf packet (encap, CONGA decision,
  // 4 link hops, feedback harvest, decap, delivery).
  sim::Scheduler sched;
  net::Fabric fabric(sched, net::testbed_baseline(), 1);
  fabric.install_lb(core::conga());
  std::uint16_t p = 0;
  for (auto _ : state) {
    net::PacketPtr pkt = net::make_packet();
    pkt->flow = net::FlowKey{0, 40, ++p, 7};
    pkt->size_bytes = 1500;
    fabric.host(0).send(std::move(pkt));
    sched.run();
  }
}
BENCHMARK(BM_EndToEndPacketForwarding);

}  // namespace

BENCHMARK_MAIN();
