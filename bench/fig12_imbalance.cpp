// Figure 12: extent of throughput imbalance across the 4 uplinks of Leaf 0
// on the baseline (symmetric) topology at 60% load — (MAX-MIN)/AVG over
// synchronous throughput samples.
//
// Paper shape: CONGA tightest (even better than MPTCP on enterprise),
// ECMP worst; CONGA-Flow between, better than MPTCP on enterprise but worse
// on data-mining.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "stats/samplers.hpp"
#include "tcp/mptcp_connection.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

stats::Summary run_one(const net::Fabric::LbFactory& lb,
                       const tcp::FlowFactory& transport,
                       const workload::FlowSizeDist& dist, bool full) {
  net::TopologyConfig topo = net::testbed_baseline();
  if (!full) topo.hosts_per_leaf = 16;
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 43);
  fabric.install_lb(lb);
  workload::TrafficGenConfig gc;
  gc.load = 0.6;
  gc.stop = full ? sim::milliseconds(500) : sim::milliseconds(100);
  workload::TrafficGenerator gen(fabric, transport, dist, gc);
  gen.start();
  std::vector<const net::Link*> uplinks;
  for (const auto& up : fabric.leaf(0).uplinks()) uplinks.push_back(up.link);
  // The paper samples every 10 ms over minutes; scaled runs use 1 ms windows
  // to get enough samples in 100 ms.
  stats::ThroughputImbalanceSampler sampler(
      sched, uplinks, full ? sim::milliseconds(10) : sim::milliseconds(1),
      sim::milliseconds(10), gc.stop);
  sched.run_until(gc.stop);
  return sampler.imbalance_pct();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header(
      "Fig 12 — throughput imbalance across Leaf0 uplinks @60% load", full);

  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  tcp::MptcpConfig m;
  m.tcp = t;

  struct Scheme {
    const char* name;
    net::Fabric::LbFactory lb;
    tcp::FlowFactory transport;
  };
  const Scheme schemes[] = {
      {"ECMP", lb::ecmp(), tcp::make_tcp_flow_factory(t)},
      {"CONGA-Flow", core::conga_flow(), tcp::make_tcp_flow_factory(t)},
      {"CONGA", core::conga(), tcp::make_tcp_flow_factory(t)},
      {"MPTCP", lb::ecmp(), tcp::make_mptcp_flow_factory(m)},
  };

  for (const bool mining : {false, true}) {
    std::printf("\n%s workload — imbalance (MAX-MIN)/AVG %%\n",
                mining ? "data-mining" : "enterprise");
    std::printf("%-12s%10s%10s%10s%10s%10s\n", "scheme", "p25", "p50", "p75",
                "p90", "mean");
    for (const Scheme& s : schemes) {
      const stats::Summary sum =
          run_one(s.lb, s.transport,
                  mining ? workload::data_mining() : workload::enterprise(),
                  full);
      std::printf("%-12s%10.1f%10.1f%10.1f%10.1f%10.1f\n", s.name,
                  sum.percentile(25), sum.percentile(50), sum.percentile(75),
                  sum.percentile(90), sum.mean());
    }
  }
  std::printf("\npaper: CONGA tightest, ECMP worst; CONGA-Flow and MPTCP "
              "between.\n");
  return 0;
}
