// Shared driver for the FCT figures (9, 10, 11a/b, 15): runs the
// scheme x load grid and prints the paper's three panels —
//   (a) overall average FCT normalised to the idle-network optimal,
//   (b) small flows (<100 KB) normalised to ECMP,
//   (c) large flows (>10 MB) normalised to ECMP.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "lb/factories.hpp"
#include "runtime/parallel_runner.hpp"
#include "tcp/mptcp_connection.hpp"
#include "workload/experiment.hpp"

namespace conga::bench {

struct GridScheme {
  std::string name;
  net::Fabric::LbFactory lb;
  tcp::FlowFactory transport;
};

struct GridConfig {
  net::TopologyConfig topo;
  workload::FlowSizeDist dist = workload::fixed_size(1e5);
  std::vector<int> loads_pct;
  sim::TimeNs warmup = sim::milliseconds(10);
  sim::TimeNs measure = sim::milliseconds(40);
  sim::TimeNs max_drain = sim::seconds(1.0);
  tcp::TcpConfig tcp;
  int mptcp_subflows = 8;
  bool include_mptcp = true;
};

inline std::vector<GridScheme> standard_schemes(const GridConfig& g) {
  std::vector<GridScheme> out;
  out.push_back({"ECMP", lb::ecmp(), tcp::make_tcp_flow_factory(g.tcp)});
  out.push_back({"CONGA-Flow", core::conga_flow(),
                 tcp::make_tcp_flow_factory(g.tcp)});
  out.push_back({"CONGA", core::conga(), tcp::make_tcp_flow_factory(g.tcp)});
  if (g.include_mptcp) {
    tcp::MptcpConfig m;
    m.tcp = g.tcp;
    m.num_subflows = g.mptcp_subflows;
    out.push_back({"MPTCP", lb::ecmp(), tcp::make_mptcp_flow_factory(m)});
  }
  return out;
}

inline void run_and_print_grid(const GridConfig& g, int jobs = 1) {
  const auto schemes = standard_schemes(g);

  struct Cell {
    workload::ExperimentResult r;
  };
  // Every (scheme, load) cell is an independent simulation: flatten the grid
  // and let the parallel runner execute cells concurrently. Cell results are
  // committed by index, so the printed tables are identical for any jobs
  // value; only the stderr progress lines interleave in completion order.
  const std::size_t n_loads = g.loads_pct.size();
  std::mutex progress_mu;
  const std::vector<workload::ExperimentResult> cells =
      runtime::parallel_map<workload::ExperimentResult>(
          schemes.size() * n_loads, jobs, [&](std::size_t i) {
            const std::size_t s = i / n_loads;
            const int load = g.loads_pct[i % n_loads];
            workload::ExperimentConfig cfg;
            cfg.topo = g.topo;
            cfg.dist = g.dist;
            cfg.load = load / 100.0;
            cfg.transport = schemes[s].transport;
            cfg.lb = schemes[s].lb;
            cfg.warmup = g.warmup;
            cfg.measure = g.measure;
            cfg.max_drain = g.max_drain;
            workload::ExperimentResult r = workload::run_fct_experiment(cfg);
            {
              const std::lock_guard<std::mutex> lock(progress_mu);
              std::fprintf(stderr,
                           "  [%s @ %d%%: %zu flows, %.0f%% completed]\n",
                           schemes[s].name.c_str(), load, r.flows,
                           r.completed_fraction * 100);
            }
            return r;
          });

  // Average normalized FCT is tail-sensitive (a one-packet flow that loses
  // its packet costs ~1000x optimal); the median panel below gives the
  // tail-robust view.
  std::vector<std::vector<Cell>> grid(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    for (std::size_t i = 0; i < n_loads; ++i) {
      grid[s].push_back({cells[s * n_loads + i]});
    }
  }

  auto header = [&] {
    std::printf("%-12s", "load(%)");
    for (int load : g.loads_pct) std::printf("%10d", load);
    std::printf("\n");
  };

  std::printf("\n(a) overall average FCT, normalised to optimal\n");
  header();
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::printf("%-12s", schemes[s].name.c_str());
    for (std::size_t i = 0; i < grid[s].size(); ++i) {
      std::printf("%10.2f", grid[s][i].r.avg_norm_fct);
    }
    std::printf("\n");
  }

  auto relative_panel = [&](const char* title, auto getter) {
    std::printf("\n%s\n", title);
    header();
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      std::printf("%-12s", schemes[s].name.c_str());
      for (std::size_t i = 0; i < grid[s].size(); ++i) {
        const double ecmp = getter(grid[0][i].r);
        const double mine = getter(grid[s][i].r);
        std::printf("%10.2f", ecmp > 0 ? mine / ecmp : 0.0);
      }
      std::printf("\n");
    }
  };
  relative_panel("(b) small flows (<100KB) avg FCT, normalised to ECMP",
                 [](const workload::ExperimentResult& r) {
                   return r.avg_fct_small;
                 });
  relative_panel("(c) large flows (>10MB) avg FCT, normalised to ECMP",
                 [](const workload::ExperimentResult& r) {
                   return r.avg_fct_large;
                 });

  std::printf("\n(a') median normalised FCT (tail-robust view)\n");
  header();
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::printf("%-12s", schemes[s].name.c_str());
    for (std::size_t i = 0; i < grid[s].size(); ++i) {
      std::printf("%10.2f", grid[s][i].r.median_norm_fct);
    }
    std::printf("\n");
  }

  std::printf("\ncompleted fraction of measured flows (censoring check)\n");
  header();
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::printf("%-12s", schemes[s].name.c_str());
    for (std::size_t i = 0; i < grid[s].size(); ++i) {
      std::printf("%10.2f", grid[s][i].r.completed_fraction);
    }
    std::printf("\n");
  }
}

}  // namespace conga::bench
