// Figure 2: congestion-aware load balancing needs non-local information
// under asymmetry.
//
// Paper scenario: L0 has 100 Gbps of TCP demand to L1 over two spine paths;
// the (S1, L1) link has half the capacity of the others (80G links, one
// 40G). Paper outcome: ECMP 90G, local congestion-aware 80G, CONGA 100G
// (66.6 / 33.3 split).
//
// We reproduce the exact ratios at a scaled size: demand == sum of path
// capacities, lower path at half rate. The bench prints delivered
// throughput, its fraction of the optimum, and the spine split for each
// scheme, averaged over several seeds.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/flow.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

struct Outcome {
  double gbps = 0;
  double s0_share = 0;
};

Outcome run_scheme(const net::Fabric::LbFactory& lb, std::uint64_t seed,
                   int hosts, sim::TimeNs measure) {
  net::TopologyConfig topo;
  topo.num_leaves = 2;
  topo.num_spines = 2;
  topo.hosts_per_leaf = hosts;
  topo.links_per_spine = 1;
  topo.host_link_bps = 10e9;
  topo.fabric_link_bps = 40e9;
  topo.overrides.push_back({1, 1, 0, 0.5});  // (S1, L1) at half capacity

  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, seed);
  fabric.install_lb(lb);

  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(5);
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  int seq = 0;
  for (int rep = 0; rep < 2; ++rep) {
    for (int h = 0; h < hosts; ++h) {
      net::FlowKey key;
      key.src_host = h;
      key.dst_host = hosts + h;
      key.src_port = static_cast<std::uint16_t>(1000 + 16 * seq++);
      key.dst_port = 80;
      flows.push_back(std::make_unique<tcp::TcpFlow>(
          sched, fabric.host(h), fabric.host(hosts + h), key,
          std::uint64_t{1} << 42, tcp_cfg, tcp::FlowCompleteFn{}));
      flows.back()->start();
    }
  }

  const sim::TimeNs warmup = sim::milliseconds(30);
  sched.run_until(warmup);
  std::uint64_t base = 0, s0_base = 0, s1_base = 0;
  for (int h = hosts; h < 2 * hosts; ++h) {
    base += fabric.host(h).bytes_received();
  }
  for (const auto& up : fabric.leaf(0).uplinks()) {
    (up.spine == 0 ? s0_base : s1_base) += up.link->bytes_sent();
  }
  sched.run_until(warmup + measure);
  std::uint64_t total = 0, s0 = 0, s1 = 0;
  for (int h = hosts; h < 2 * hosts; ++h) {
    total += fabric.host(h).bytes_received();
  }
  for (const auto& up : fabric.leaf(0).uplinks()) {
    (up.spine == 0 ? s0 : s1) += up.link->bytes_sent();
  }

  Outcome o;
  o.gbps = static_cast<double>(total - base) * 8.0 /
           sim::to_seconds(measure) / 1e9;
  const double ds0 = static_cast<double>(s0 - s0_base);
  const double ds1 = static_cast<double>(s1 - s1_base);
  o.s0_share = ds0 / (ds0 + ds1);
  return o;
}

// Same scenario driven by a Poisson stream of 1 MB flows at ~97% of the
// path capacity: every flow makes a fresh decision, so the *continuous*
// rebalancing behaviour of each scheme shows (this is where the §2.4 local
// paradox bites: the under-delivering path keeps looking idle locally and
// keeps attracting traffic).
Outcome run_scheme_poisson(const net::Fabric::LbFactory& lb,
                           std::uint64_t seed, int hosts,
                           sim::TimeNs measure) {
  net::TopologyConfig topo;
  topo.num_leaves = 2;
  topo.num_spines = 2;
  topo.hosts_per_leaf = hosts;
  topo.links_per_spine = 1;
  topo.host_link_bps = 10e9;
  topo.fabric_link_bps = 40e9;
  topo.overrides.push_back({1, 1, 0, 0.5});

  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, seed);
  fabric.install_lb(lb);

  tcp::TcpConfig tcp_cfg;
  tcp_cfg.min_rto = sim::milliseconds(5);

  workload::TrafficGenConfig gc;
  // Offered 58G from L0 only, against 60G of (asymmetric) paths.
  gc.load = 58e9 / (topo.leaf_uplink_capacity_bps() * topo.num_leaves);
  gc.stop = sim::milliseconds(30) + measure;
  gc.seed = seed;
  gc.pair_picker = [hosts](sim::Rng& rng) {
    return std::pair<net::HostId, net::HostId>(
        static_cast<net::HostId>(rng.index(static_cast<std::size_t>(hosts))),
        static_cast<net::HostId>(hosts + rng.index(
            static_cast<std::size_t>(hosts))));
  };
  workload::TrafficGenerator gen(fabric,
                                 tcp::make_tcp_flow_factory(tcp_cfg),
                                 workload::fixed_size(1'000'000), gc);
  gen.start();

  sched.run_until(sim::milliseconds(30));
  std::uint64_t base = 0, s0_base = 0, s1_base = 0;
  for (int h = hosts; h < 2 * hosts; ++h) {
    base += fabric.host(h).bytes_received();
  }
  for (const auto& up : fabric.leaf(0).uplinks()) {
    (up.spine == 0 ? s0_base : s1_base) += up.link->bytes_sent();
  }
  sched.run_until(sim::milliseconds(30) + measure);
  std::uint64_t total = 0, s0 = 0, s1 = 0;
  for (int h = hosts; h < 2 * hosts; ++h) {
    total += fabric.host(h).bytes_received();
  }
  for (const auto& up : fabric.leaf(0).uplinks()) {
    (up.spine == 0 ? s0 : s1) += up.link->bytes_sent();
  }
  Outcome o;
  o.gbps = static_cast<double>(total - base) * 8.0 /
           sim::to_seconds(measure) / 1e9;
  const double d0 = static_cast<double>(s0 - s0_base);
  const double d1 = static_cast<double>(s1 - s1_base);
  o.s0_share = d0 / (d0 + d1);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header(
      "Fig 2 — asymmetry: static (ECMP) vs local-aware vs global (CONGA)",
      full);

  const int hosts = 6;  // 60G demand vs 40G + 20G of downstream paths
  const sim::TimeNs measure =
      full ? sim::milliseconds(300) : sim::milliseconds(80);
  const int seeds = full ? 5 : 3;
  const double optimal_gbps = 60.0 * (1460.0 / 1500.0);  // goodput ceiling

  struct Scheme {
    const char* name;
    net::Fabric::LbFactory lb;
    double paper_fraction;  // of optimal, from Fig 2
  };
  const std::vector<Scheme> schemes = {
      {"ECMP", lb::ecmp(), 0.90},
      {"Local-DRE", lb::local_aware(), 0.80},
      {"Local-Equal", lb::local_equal(), 0.80},
      {"CONGA", core::conga(), 1.00},
      {"Weighted2:1", lb::weighted({2.0, 1.0}), 1.00},
  };

  std::printf("--- (i) persistent flows, demand 60G (the paper's setup) ---\n");
  std::printf("%-14s%12s%12s%12s%14s\n", "scheme", "Gbps", "frac-opt",
              "S0-share", "paper-frac");
  for (const Scheme& s : schemes) {
    double gbps = 0, share = 0;
    for (int k = 0; k < seeds; ++k) {
      const Outcome o = run_scheme(s.lb, 11 + 13 * static_cast<unsigned>(k),
                                   hosts, measure);
      gbps += o.gbps;
      share += o.s0_share;
    }
    gbps /= seeds;
    share /= seeds;
    std::printf("%-14s%12.2f%12.3f%12.3f%14.2f\n", s.name, gbps,
                gbps / optimal_gbps, share, s.paper_fraction);
  }

  std::printf(
      "\n--- (ii) Poisson 1MB flows, offered 58G (continuous decisions) ---\n");
  std::printf("%-14s%12s%12s%12s%14s\n", "scheme", "Gbps", "frac-opt",
              "S0-share", "paper-frac");
  for (const Scheme& s : schemes) {
    double gbps = 0, share = 0;
    for (int k = 0; k < seeds; ++k) {
      const Outcome o = run_scheme_poisson(
          s.lb, 11 + 13 * static_cast<unsigned>(k), hosts, measure);
      gbps += o.gbps;
      share += o.s0_share;
    }
    gbps /= seeds;
    share /= seeds;
    std::printf("%-14s%12.2f%12.3f%12.3f%14.2f\n", s.name, gbps,
                gbps / optimal_gbps, share, s.paper_fraction);
  }
  std::printf(
      "\npaper: ECMP 90G, local-aware 80G, CONGA 100G of a 100G demand;\n"
      "CONGA's optimal split here is 2/3 : 1/3 toward S0 (paper: 66.6/33.3).\n");
  return 0;
}
