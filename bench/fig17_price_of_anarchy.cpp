// Figure 17 / Theorem 1: the Price of Anarchy of CONGA's bottleneck routing
// game on Leaf-Spine networks is at most 2, and in practice equilibria are
// near-optimal.
//
// The bench (a) solves the paper's Fig 2/Fig 3 instances exactly (LP optimum
// vs best-response equilibrium), and (b) sweeps random Leaf-Spine instances,
// reporting the worst Nash-vs-optimal ratio found across many adversarial
// starting points — empirically verifying ratio <= 2 and "much closer to
// optimal in practice".
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/bottleneck_game.hpp"
#include "bench_util.hpp"
#include "sim/random.hpp"

using namespace conga;
using namespace conga::analysis;

namespace {

void named_instance(const char* name, const LeafSpineGame& g) {
  GameFlow opt;
  const double b_opt = optimal_bottleneck(g, &opt);
  sim::Rng rng(1);
  double worst = 0;
  for (int start = 0; start < 50; ++start) {
    GameFlow f = random_flow(g, rng);
    best_response_dynamics(g, f);
    if (is_nash(g, f, 1e-6)) {
      worst = std::max(worst, network_bottleneck(g, f));
    }
  }
  std::printf("%-28s optimal B*=%7.4f   worst Nash B=%7.4f   PoA=%5.3f\n",
              name, b_opt, worst, worst / b_opt);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header("Fig 17 / Theorem 1 — Price of Anarchy of the CONGA game",
                      full);

  // The Fig 2 instance.
  {
    LeafSpineGame g = LeafSpineGame::uniform(2, 2, 80);
    g.down[1][1] = 40;
    g.users.push_back({0, 1, 100});
    named_instance("Fig2 (single user)", g);
  }
  // The Fig 3(b) instance.
  {
    LeafSpineGame g = LeafSpineGame::uniform(3, 2, 40);
    g.up[0][1] = 0;
    g.users.push_back({1, 2, 80});
    g.users.push_back({0, 2, 40});
    named_instance("Fig3b (two users)", g);
  }
  // Shared-destination contention.
  {
    LeafSpineGame g = LeafSpineGame::uniform(3, 3, 10);
    g.users.push_back({0, 2, 12});
    g.users.push_back({1, 2, 12});
    named_instance("shared destination", g);
  }

  // Random sweep.
  const int instances = full ? 500 : 100;
  const int starts = full ? 20 : 8;
  sim::Rng rng(2026);
  double worst_ratio = 1.0;
  double sum_ratio = 0;
  int counted = 0;
  for (int i = 0; i < instances; ++i) {
    LeafSpineGame g;
    g.num_leaves = 2 + static_cast<int>(rng.index(4));
    g.num_spines = 2 + static_cast<int>(rng.index(4));
    g.up.assign(static_cast<std::size_t>(g.num_leaves),
                std::vector<double>(static_cast<std::size_t>(g.num_spines)));
    g.down.assign(static_cast<std::size_t>(g.num_spines),
                  std::vector<double>(static_cast<std::size_t>(g.num_leaves)));
    for (int l = 0; l < g.num_leaves; ++l) {
      for (int s = 0; s < g.num_spines; ++s) {
        g.up[static_cast<std::size_t>(l)][static_cast<std::size_t>(s)] =
            rng.chance(0.15) ? 0.0 : 10 + rng.uniform() * 90;  // some failures
        g.down[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)] =
            rng.chance(0.15) ? 0.0 : 10 + rng.uniform() * 90;
      }
    }
    const int users = 2 + static_cast<int>(rng.index(5));
    for (int u = 0; u < users; ++u) {
      int src = static_cast<int>(rng.index(static_cast<std::size_t>(g.num_leaves)));
      int dst = static_cast<int>(rng.index(static_cast<std::size_t>(g.num_leaves)));
      while (dst == src) {
        dst = static_cast<int>(
            rng.index(static_cast<std::size_t>(g.num_leaves)));
      }
      g.users.push_back({src, dst, 5 + rng.uniform() * 40});
    }
    const double opt = optimal_bottleneck(g);
    if (!(opt > 0) || opt > 1e9) continue;  // infeasible instance
    double worst_nash = 0;
    for (int s = 0; s < starts; ++s) {
      GameFlow f = random_flow(g, rng);
      best_response_dynamics(g, f);
      if (is_nash(g, f, 1e-6)) {
        worst_nash = std::max(worst_nash, network_bottleneck(g, f));
      }
    }
    if (worst_nash == 0) continue;
    const double ratio = worst_nash / opt;
    worst_ratio = std::max(worst_ratio, ratio);
    sum_ratio += ratio;
    ++counted;
  }

  std::printf("\nrandom sweep: %d instances x %d adversarial starts\n", counted,
              starts);
  std::printf("mean Nash/optimal ratio: %.4f\n", sum_ratio / counted);
  std::printf("worst Nash/optimal ratio: %.4f   (Theorem 1 bound: 2)\n",
              worst_ratio);
  std::printf("\npaper: PoA = 2 in the worst case, but 'in practice the "
              "performance of CONGA is much closer to optimal'.\n");
  return worst_ratio <= 2.0 + 1e-6 ? 0 : 1;
}
