// Figure 14: HDFS IO benchmark (TestDFSIO-style write job, 3-way
// replication) with and without the link failure, plus enterprise background
// traffic (the paper added it because the disks otherwise hid the network).
//
// Paper shape: (a) baseline — ECMP ~= CONGA, MPTCP has high-outlier trials;
// (b) with the failed link — ECMP job times nearly double, CONGA unchanged,
// MPTCP volatile.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "stats/summary.hpp"
#include "tcp/mptcp_connection.hpp"
#include "workload/hdfs_gen.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

double run_trial(const net::TopologyConfig& topo,
                 const net::Fabric::LbFactory& lb,
                 const tcp::FlowFactory& transport, std::uint64_t seed,
                 bool full) {
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 7);
  fabric.install_lb(lb);

  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);

  // Background enterprise traffic at 40% load, running for the whole job
  // (the paper added background traffic because TestDFSIO alone was
  // disk-bound and did not stress the network).
  workload::TrafficGenConfig bg;
  bg.load = 0.4;
  bg.stop = sim::seconds(30.0);
  bg.seed = seed * 3 + 1;
  workload::TrafficGenerator background(
      fabric, tcp::make_tcp_flow_factory(t), workload::enterprise(), bg);
  background.start();

  workload::HdfsConfig h;
  // One writer per second host, 3-way replication: the replication
  // pipelines themselves load the spine.
  for (int w = 0; w < fabric.num_hosts(); w += 2) h.writers.push_back(w);
  h.bytes_per_writer = full ? 64'000'000 : 24'000'000;
  h.block_bytes = 8'000'000;
  h.replicas = 3;
  h.seed = seed;
  workload::HdfsJob job(fabric, transport, h);
  job.start();

  while (!job.finished() && sched.now() < sim::seconds(30.0)) {
    sched.run_until(sched.now() + sim::milliseconds(10));
  }
  return job.finished() ? sim::to_seconds(job.completion_time()) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header("Fig 14 — HDFS write benchmark (TestDFSIO model)", full);

  const int trials = full ? 10 : 3;

  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  tcp::MptcpConfig m;
  m.tcp = t;

  struct Scheme {
    const char* name;
    net::Fabric::LbFactory lb;
    tcp::FlowFactory transport;
  };
  const Scheme schemes[] = {
      {"ECMP", lb::ecmp(), tcp::make_tcp_flow_factory(t)},
      {"CONGA", core::conga(), tcp::make_tcp_flow_factory(t)},
      {"MPTCP", lb::ecmp(), tcp::make_mptcp_flow_factory(m)},
  };

  for (const bool failure : {false, true}) {
    net::TopologyConfig topo =
        failure ? net::testbed_link_failure() : net::testbed_baseline();
    if (!full) topo.hosts_per_leaf = 16;
    std::printf("\n===== %s =====\n",
                failure ? "(b) with link failure" : "(a) baseline topology");
    std::printf("%-8s", "trial");
    for (const Scheme& s : schemes) std::printf("%10s", s.name);
    std::printf("   (job completion, seconds)\n");

    std::vector<stats::Summary> sums(3);
    for (int trial = 0; trial < trials; ++trial) {
      std::printf("%-8d", trial);
      for (std::size_t s = 0; s < 3; ++s) {
        const double secs = run_trial(topo, schemes[s].lb,
                                      schemes[s].transport,
                                      100 + static_cast<unsigned>(trial), full);
        sums[s].add(secs);
        std::printf("%10.2f", secs);
      }
      std::printf("\n");
    }
    std::printf("%-8s", "mean");
    for (std::size_t s = 0; s < 3; ++s) std::printf("%10.2f", sums[s].mean());
    std::printf("\n%-8s", "max");
    for (std::size_t s = 0; s < 3; ++s) std::printf("%10.2f", sums[s].max());
    std::printf("\n");
  }
  std::printf("\npaper: failure ~doubles ECMP job times; CONGA unaffected; "
              "MPTCP volatile.\n");
  return 0;
}
