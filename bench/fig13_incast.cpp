// Figure 13: Incast — effective client throughput vs fan-in for CONGA+TCP
// and MPTCP, with minRTO in {200ms, 1ms} and MTU in {1500, 9000}.
//
// Paper shape: MPTCP collapses (below 30% at large fan-in with 1500B, ~5%
// with jumbo frames at 200ms minRTO); CONGA+TCP achieves 2-8x better
// throughput in the same settings.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/mptcp_connection.hpp"
#include "workload/incast_gen.hpp"

using namespace conga;

namespace {

double run_incast(int fanin, const tcp::FlowFactory& transport, bool full) {
  net::TopologyConfig topo = net::testbed_baseline();
  // The testbed's ToR uses dynamic shared buffering (~10 MB class ASIC): a
  // hot port absorbs plain TCP's synchronized burst, but MPTCP's 8-subflow
  // burst (8x the initial windows, 6x more again with jumbo frames)
  // overruns even that — precisely the paper's point. A static 512 KB port
  // would RTO-collapse every round for every transport.
  topo.shared_buffer_bytes = 10 * 1024 * 1024;
  topo.shared_buffer_alpha = 2.0;
  topo.edge_queue_bytes = 10 * 1024 * 1024;  // pool governs, not the cap
  // Client is host 0 (Leaf 0); servers fill the rest of both racks, as in
  // the testbed where the 63 other servers respond.
  sim::Scheduler sched;
  net::Fabric fabric(sched, topo, 17);
  fabric.install_lb(core::conga());

  workload::IncastConfig inc;
  inc.client = 0;
  for (int s = 1; s <= fanin; ++s) inc.servers.push_back(s);
  inc.total_bytes = 10'000'000;
  inc.rounds = full ? 10 : 4;

  workload::IncastGenerator gen(fabric, transport, inc);
  gen.start();
  sched.run_until(sim::seconds(full ? 120.0 : 60.0));
  return gen.finished() ? gen.goodput_fraction() * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header("Fig 13 — Incast throughput vs fan-in", full);

  const std::vector<int> fanins =
      full ? std::vector<int>{1, 4, 8, 16, 24, 32, 48, 63}
           : std::vector<int>{1, 8, 16, 32, 63};

  for (const std::uint32_t mtu : {1500u, 9000u}) {
    std::printf("\n===== MTU %u =====\n", mtu);
    std::printf("%-22s", "fan-in");
    for (int f : fanins) std::printf("%8d", f);
    std::printf("\n");
    for (const sim::TimeNs min_rto :
         {sim::milliseconds(200), sim::milliseconds(1)}) {
      tcp::TcpConfig t;
      t.mtu = mtu;
      t.min_rto = min_rto;
      tcp::MptcpConfig m;
      m.tcp = t;
      m.num_subflows = 8;

      char label[64];
      std::snprintf(label, sizeof(label), "CONGA+TCP (%lldms)",
                    static_cast<long long>(min_rto / sim::kNsPerMs));
      std::printf("%-22s", label);
      for (int f : fanins) {
        std::printf("%8.1f", run_incast(f, tcp::make_tcp_flow_factory(t), full));
      }
      std::printf("\n");

      std::snprintf(label, sizeof(label), "MPTCP (%lldms)",
                    static_cast<long long>(min_rto / sim::kNsPerMs));
      std::printf("%-22s", label);
      for (int f : fanins) {
        std::printf("%8.1f",
                    run_incast(f, tcp::make_mptcp_flow_factory(m), full));
      }
      std::printf("\n");
    }
  }
  std::printf("\n(values: %% of the client 10G access link; paper: CONGA+TCP "
              "2-8x MPTCP at high fan-in)\n");
  return 0;
}
