// Figure 3: the optimal traffic split in an asymmetric topology depends on
// the traffic matrix — so no static (oblivious) weighting can be right.
//
// Paper scenario: 3 leaves, 2 spines, all 40G links, L0 lacks the uplink to
// S1. (a) with no L0->L2 traffic, L1->L2 should split 40/40 across the
// spines; (b) with 40G of L0->L2 traffic (forced through S0), L1->L2 must
// shift toward S1.
//
// Two reproductions side by side:
//  1. the bottleneck-game LP (exact optimal splits), and
//  2. the packet simulator with CONGA vs ECMP vs static weights.
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/bottleneck_game.hpp"
#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "net/fabric.hpp"
#include "tcp/flow.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

void analytic_part() {
  std::printf("--- analytic (bottleneck-game LP, §6 machinery) ---\n");
  for (const bool with_l0 : {false, true}) {
    analysis::LeafSpineGame g = analysis::LeafSpineGame::uniform(3, 2, 40);
    g.up[0][1] = 0;  // L0 has no uplink to S1
    g.users.push_back({1, 2, 80});  // L1 -> L2, 80G
    if (with_l0) g.users.push_back({0, 2, 40});
    analysis::GameFlow opt;
    const double b = analysis::optimal_bottleneck(g, &opt);
    std::printf("L0->L2 = %3dG: optimal L1->L2 split S0/S1 = %5.1f / %5.1f"
                "   (bottleneck %.3f)\n",
                with_l0 ? 40 : 0, opt.x[0][0], opt.x[0][1], b);
  }
  std::printf("paper: (a) 40/40, (b) shifts to give L0's traffic room on S0\n\n");
}

double simulated_s1_share(bool with_l0, const net::Fabric::LbFactory& lb,
                          sim::TimeNs measure) {
  net::TopologyConfig cfg;
  cfg.num_leaves = 3;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 8;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  cfg.overrides.push_back({0, 1, 0, 0.0});

  sim::Scheduler sched;
  net::Fabric fabric(sched, cfg, 21);
  fabric.install_lb(lb);

  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(5);

  workload::TrafficGenConfig gen_cfg;
  gen_cfg.load = 24e9 / (cfg.leaf_uplink_capacity_bps() * cfg.num_leaves);
  gen_cfg.stop = sim::milliseconds(30) + measure;
  gen_cfg.pair_picker = [](sim::Rng& rng) {
    return std::pair<net::HostId, net::HostId>(
        static_cast<net::HostId>(8 + rng.index(8)),
        static_cast<net::HostId>(20 + rng.index(4)));
  };
  workload::TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(t),
                                 workload::fixed_size(500'000), gen_cfg);
  gen.start();

  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  if (with_l0) {
    for (int h = 0; h < 4; ++h) {
      net::FlowKey key;
      key.src_host = h;
      key.dst_host = 16 + h;
      key.src_port = static_cast<std::uint16_t>(2000 + 16 * h);
      key.dst_port = 80;
      flows.push_back(std::make_unique<tcp::TcpFlow>(
          sched, fabric.host(h), fabric.host(16 + h), key,
          std::uint64_t{1} << 42, t, tcp::FlowCompleteFn{}));
      flows.back()->start();
    }
  }

  sched.run_until(sim::milliseconds(30));
  std::uint64_t s0b = 0, s1b = 0;
  for (const auto& up : fabric.leaf(1).uplinks()) {
    (up.spine == 0 ? s0b : s1b) += up.link->bytes_sent();
  }
  sched.run_until(sim::milliseconds(30) + measure);
  std::uint64_t s0 = 0, s1 = 0;
  for (const auto& up : fabric.leaf(1).uplinks()) {
    (up.spine == 0 ? s0 : s1) += up.link->bytes_sent();
  }
  const double d0 = static_cast<double>(s0 - s0b);
  const double d1 = static_cast<double>(s1 - s1b);
  return d1 / (d0 + d1);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header(
      "Fig 3 — the right split depends on the traffic matrix", full);

  analytic_part();

  const sim::TimeNs measure =
      full ? sim::milliseconds(300) : sim::milliseconds(70);
  std::printf("--- simulated: S1 share of the L1->L2 traffic ---\n");
  std::printf("%-14s%16s%16s\n", "scheme", "no-L0-traffic", "L0->L2=40G");
  struct Scheme {
    const char* name;
    net::Fabric::LbFactory lb;
  };
  for (const Scheme& s :
       {Scheme{"ECMP", lb::ecmp()},
        Scheme{"Weighted1:1", lb::weighted({1.0, 1.0})},
        Scheme{"CONGA", core::conga()}}) {
    const double a = simulated_s1_share(false, s.lb, measure);
    const double b = simulated_s1_share(true, s.lb, measure);
    std::printf("%-14s%16.3f%16.3f\n", s.name, a, b);
  }
  std::printf(
      "\npaper: only congestion-aware feedback adapts the split (CONGA's S1\n"
      "share rises with cross traffic; static schemes stay ~0.5).\n");
  return 0;
}
