// §7 extension: CONGA in a 3-tier pod fabric.
//
// The paper: "CONGA is beneficial even in these cases since it balances the
// traffic within each pod optimally, which also reduces congestion for
// inter-pod traffic. Moreover, even for inter-pod traffic, CONGA makes
// better decisions than ECMP at the first hop."
//
// Scenario: 2 pods x (2 leaves x 2 spines), 2 cores; one pod-0 spine's core
// links degraded to 10%. Mixed intra-pod and inter-pod persistent traffic;
// the bench reports delivered throughput per traffic class for ECMP vs
// CONGA.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "lb/factories.hpp"
#include "net/pod_fabric.hpp"
#include "tcp/flow.hpp"

using namespace conga;

namespace {

struct Result {
  double intra_gbps = 0;
  double inter_gbps = 0;
};

Result run(const net::Fabric::LbFactory& lb, bool full) {
  net::PodTopologyConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.spines_per_pod = 2;
  cfg.hosts_per_leaf = 6;
  cfg.num_cores = 2;
  cfg.host_link_bps = 10e9;
  cfg.fabric_link_bps = 40e9;
  cfg.core_link_bps = 40e9;
  // Asymmetry: pod 0's spine 1 reaches the core at a tenth of the rate.
  cfg.core_overrides.push_back({0, 1, 0, 0.1});
  cfg.core_overrides.push_back({0, 1, 1, 0.1});

  sim::Scheduler sched;
  net::PodFabric fabric(sched, cfg, 7);
  fabric.install_lb(lb);

  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(5);
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  std::vector<net::HostId> intra_dsts, inter_dsts;
  int seq = 0;
  auto add = [&](net::HostId s, net::HostId d) {
    net::FlowKey key;
    key.src_host = s;
    key.dst_host = d;
    key.src_port = static_cast<std::uint16_t>(1000 + 16 * seq++);
    key.dst_port = 80;
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sched, fabric.host(s), fabric.host(d), key, std::uint64_t{1} << 42, t,
        tcp::FlowCompleteFn{}));
    flows.back()->start();
  };
  // Intra-pod: pod-0 leaf0 hosts 0-2 -> pod-0 leaf1 hosts 6-8.
  for (int i = 0; i < 3; ++i) {
    add(i, 6 + i);
    intra_dsts.push_back(6 + i);
  }
  // Inter-pod: pod-0 leaf0 hosts 3-5 -> pod-1 leaf3 hosts 18-20.
  for (int i = 0; i < 3; ++i) {
    add(3 + i, 18 + i);
    inter_dsts.push_back(18 + i);
  }

  const sim::TimeNs warmup = sim::milliseconds(30);
  const sim::TimeNs measure =
      full ? sim::milliseconds(300) : sim::milliseconds(80);
  sched.run_until(warmup);
  auto sum_bytes = [&](const std::vector<net::HostId>& hosts) {
    std::uint64_t b = 0;
    for (net::HostId h : hosts) b += fabric.host(h).bytes_received();
    return b;
  };
  const std::uint64_t intra0 = sum_bytes(intra_dsts);
  const std::uint64_t inter0 = sum_bytes(inter_dsts);
  sched.run_until(warmup + measure);
  Result r;
  r.intra_gbps = static_cast<double>(sum_bytes(intra_dsts) - intra0) * 8.0 /
                 sim::to_seconds(measure) / 1e9;
  r.inter_gbps = static_cast<double>(sum_bytes(inter_dsts) - inter0) * 8.0 /
                 sim::to_seconds(measure) / 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header(
      "§7 extension — 3-tier pod fabric with a degraded core path", full);

  std::printf("traffic: 30G intra-pod + 30G inter-pod from pod-0/leaf-0;\n"
              "pod-0 spine-1's core links run at 10%%.\n\n");
  std::printf("%-10s%16s%16s%14s\n", "scheme", "intra-pod Gbps",
              "inter-pod Gbps", "total Gbps");
  for (const auto& [name, lb] :
       {std::pair<const char*, net::Fabric::LbFactory>{"ECMP", lb::ecmp()},
        std::pair<const char*, net::Fabric::LbFactory>{"CONGA",
                                                       core::conga()}}) {
    const Result r = run(lb, full);
    std::printf("%-10s%16.2f%16.2f%14.2f\n", name, r.intra_gbps, r.inter_gbps,
                r.intra_gbps + r.inter_gbps);
  }
  std::printf("\nCONGA's first-hop decision avoids the spine with the "
              "degraded core path for\ninter-pod flowlets (the CE field "
              "accumulated across 4 hops tells it to),\nwhile ECMP pins half "
              "of them there.\n");
  return 0;
}
