// Figure 11: impact of a link failure (Fig 7b: one of the Leaf1-Spine1 40G
// links down, 3 of 4 uplinks remain). Loads 10-70% only (bisection is 75% of
// nominal).
//
// Paper shape: ECMP deteriorates drastically past 50% load (half the
// Leaf0->Leaf1 traffic still hashes through Spine 1, whose single surviving
// link becomes oversubscribed at 2x); adaptive schemes shift away. CONGA is
// most robust (up to ~30% better than MPTCP on enterprise, ~2x on
// data-mining at 70%), and part (c) shows CONGA keeps the hotspot queue
// [Spine1->Leaf1] ~4x shorter at the 90th percentile.
#include <cstdio>

#include "bench_util.hpp"
#include "fct_grid.hpp"
#include "telemetry/probes.hpp"
#include "workload/traffic_gen.hpp"

using namespace conga;

namespace {

void hotspot_queue_cdf(bool full) {
  std::printf("\n(c) queue occupancy CDF at the hotspot [Spine1->Leaf1], "
              "data-mining @ 60%% load\n");
  net::TopologyConfig topo = net::testbed_link_failure();
  if (!full) topo.hosts_per_leaf = 16;
  topo.fabric_queue_bytes = 10 * 1024 * 1024;  // room to expose the contrast

  struct SchemeRow {
    const char* name;
    net::Fabric::LbFactory lb;
  };
  const std::vector<double> percentiles = {10, 25, 50, 75, 90, 99};
  std::printf("%-12s", "pct");
  for (double p : percentiles) std::printf("%11.0f", p);
  std::printf("  (queue KB)\n");

  for (const SchemeRow& s :
       {SchemeRow{"ECMP", lb::ecmp()},
        SchemeRow{"CONGA-Flow", core::conga_flow()},
        SchemeRow{"CONGA", core::conga()}}) {
    sim::Scheduler sched;
    net::Fabric fabric(sched, topo, 31);
    fabric.install_lb(s.lb);
    tcp::TcpConfig t;
    t.min_rto = sim::milliseconds(10);
    workload::TrafficGenConfig gc;
    gc.load = 0.6;
    gc.stop = full ? sim::milliseconds(300) : sim::milliseconds(80);
    workload::TrafficGenerator gen(fabric, tcp::make_tcp_flow_factory(t),
                                   workload::data_mining(), gc);
    gen.start();
    // Probe-only mask: the bench consumes the in-memory series; masking the
    // per-packet categories keeps the run lean (tools/conga_trace records the
    // same scenario with everything enabled).
    telemetry::TraceSink sink;
    fabric.attach_telemetry(&sink);
    sink.set_category_mask(
        telemetry::category_bit(telemetry::Category::kProbe));
    const int hotspot = sink.probes().find("down:l1s1p0/queue_bytes");
    telemetry::PeriodicSampler sampler(sched, sink, sim::microseconds(100),
                                       sim::milliseconds(10), gc.stop,
                                       {hotspot});
    sched.run_until(gc.stop);
    std::printf("%-12s", s.name);
    for (double p : percentiles) {
      std::printf("%11.1f", sampler.summary(0).percentile(p) / 1e3);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  const int jobs = bench::jobs_mode(argc, argv);
  bench::print_header("Fig 11 — impact of link failure (asymmetric testbed)",
                      full, jobs);

  for (const bool mining : {false, true}) {
    std::printf("\n===== %s workload =====\n",
                mining ? "data-mining" : "enterprise");
    bench::GridConfig g;
    g.topo = net::testbed_link_failure();
    if (!full) g.topo.hosts_per_leaf = 16;
    g.dist = mining ? workload::data_mining() : workload::enterprise();
    g.loads_pct = full ? std::vector<int>{10, 20, 30, 40, 50, 60, 70}
                       : std::vector<int>{10, 30, 50, 60, 70};
    g.warmup = sim::milliseconds(10);
    g.measure = full ? sim::milliseconds(200)
                     : (mining ? sim::milliseconds(80) : sim::milliseconds(50));
    g.max_drain = full ? sim::seconds(5.0) : sim::seconds(2.0);
    g.tcp.min_rto = sim::milliseconds(10);
    run_and_print_grid(g, jobs);
  }

  hotspot_queue_cdf(full);
  return 0;
}
