// Figure 5: distribution of data bytes across transfer sizes for different
// flowlet inactivity gaps (250 ms ~ whole flows, 500 us, 100 us).
//
// The paper measured a production cluster; we run the same splitter over a
// synthetic bursty trace (NIC-offload-style bursts; see
// workload/flowlet_study.hpp for the substitution rationale). The headline
// number reproduced: with a 500 us gap the transfer size covering half the
// bytes drops by roughly two orders of magnitude.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workload/flowlet_study.hpp"

using namespace conga;
using namespace conga::workload;

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::print_header("Fig 5 — bytes vs transfer size per flowlet gap", full);

  BurstyTraceConfig cfg;
  cfg.duration = full ? sim::seconds(10.0) : sim::seconds(2.0);
  cfg.flow_arrival_per_sec = full ? 3000 : 1500;
  const auto trace = generate_bursty_trace(enterprise(), cfg);

  const std::vector<std::pair<const char*, sim::TimeNs>> gaps = {
      {"Flow (250ms)", sim::milliseconds(250)},
      {"Flowlet (500us)", sim::microseconds(500)},
      {"Flowlet (100us)", sim::microseconds(100)},
  };
  std::vector<double> queries;
  for (double s = 1e2; s <= 1e9 + 1; s *= 10) queries.push_back(s);

  std::printf("%-18s", "size (bytes)");
  for (double q : queries) std::printf("%9.0e", q);
  std::printf("%12s\n", "50%-bytes@");
  for (const auto& [name, gap] : gaps) {
    const auto sizes = split_flowlets(trace, gap);
    const auto cdf = bytes_cdf_at(sizes, queries);
    std::printf("%-18s", name);
    for (double v : cdf) std::printf("%9.3f", v);
    std::printf("%12.2e\n", bytes_median_size(sizes));
  }

  const auto whole = split_flowlets(trace, sim::milliseconds(250));
  const auto f500 = split_flowlets(trace, sim::microseconds(500));
  std::printf(
      "\nmedian-byte transfer size reduction at 500us gap: %.0fx"
      " (paper: ~30MB -> ~500KB, ~60x)\n",
      bytes_median_size(whole) / bytes_median_size(f500));

  // §2.6.1 companion measurement: concurrent distinct flows per 1 ms.
  const auto counts = concurrent_flows(trace, sim::milliseconds(1));
  std::size_t mx = 0;
  double sum = 0;
  for (std::size_t c : counts) {
    mx = std::max(mx, c);
    sum += static_cast<double>(c);
  }
  std::printf("concurrent flows per 1ms: mean %.0f, max %zu"
              " (paper: median 130, max < 300)\n",
              sum / static_cast<double>(counts.size()), mx);
  return 0;
}
